// Payload-store experiment tests: byte accounting end-to-end through the
// simulator, store-off bit-identity, size-aware policies under a byte
// budget, and the erasure tier's degraded reads after a confirmed death.
#include <gtest/gtest.h>

#include <algorithm>

#include "driver/experiment.h"
#include "fault/fault_plan.h"
#include "workload/polygraph.h"

namespace adc::driver {
namespace {

workload::Trace small_trace() {
  workload::PolygraphConfig config;
  config.fill_requests = 1500;
  config.phase2_requests = 2500;
  config.phase3_requests = 2000;
  config.hot_set_size = 150;
  config.seed = 3;
  return workload::generate_polygraph_trace(config);
}

ExperimentConfig small_config(Scheme scheme) {
  ExperimentConfig config;
  config.scheme = scheme;
  config.proxies = 5;
  config.adc.single_table_size = 200;
  config.adc.multiple_table_size = 200;
  config.adc.caching_table_size = 100;
  config.ma_window = 200;
  config.sample_every = 500;
  return config;
}

ExperimentConfig payload_config(Scheme scheme) {
  ExperimentConfig config = small_config(scheme);
  config.payload.enabled = true;
  config.payload.seed = 97;
  return config;
}

bool equal_results(const ExperimentResult& a, const ExperimentResult& b) {
  return a.summary.completed == b.summary.completed && a.summary.hits == b.summary.hits &&
         a.summary.total_hops == b.summary.total_hops && a.messages == b.messages &&
         a.events == b.events && a.sim_end_time == b.sim_end_time &&
         a.origin_served == b.origin_served;
}

class PayloadSchemesTest : public ::testing::TestWithParam<Scheme> {};

TEST_P(PayloadSchemesTest, ByteCountersAreConservedAndNonTrivial) {
  const auto trace = small_trace();
  const auto result = run_experiment(payload_config(GetParam()), trace);
  ASSERT_EQ(result.summary.completed, trace.size());
  // Every completed request carried its payload size.
  EXPECT_GT(result.summary.bytes_completed, result.summary.completed);  // > 1 byte each
  EXPECT_LE(result.summary.bytes_hit, result.summary.bytes_completed);
  EXPECT_EQ(result.summary.origin_bytes(),
            result.summary.bytes_completed - result.summary.bytes_hit);
  EXPECT_GT(result.summary.byte_hit_rate(), 0.0);
  // The heavy tail makes bytes diverge from requests: the two hit rates
  // must not be numerically identical.
  EXPECT_NE(result.summary.byte_hit_rate(), result.summary.hit_rate());
  // Origin-side byte accounting agrees with the request-side counters.
  EXPECT_EQ(result.store.origin_bytes_served, result.summary.origin_bytes());
}

TEST_P(PayloadSchemesTest, PayloadRunsAreDeterministic) {
  const auto trace = small_trace();
  const auto a = run_experiment(payload_config(GetParam()), trace);
  const auto b = run_experiment(payload_config(GetParam()), trace);
  EXPECT_TRUE(equal_results(a, b));
  EXPECT_EQ(a.summary.bytes_completed, b.summary.bytes_completed);
  EXPECT_EQ(a.summary.bytes_hit, b.summary.bytes_hit);
}

INSTANTIATE_TEST_SUITE_P(Schemes, PayloadSchemesTest,
                         ::testing::Values(Scheme::kAdc, Scheme::kCarp, Scheme::kConsistent,
                                           Scheme::kRendezvous, Scheme::kHierarchical,
                                           Scheme::kCoordinator));

TEST(PayloadExperiment, DisabledStoreIsInvisible) {
  // The store derives everything from its own seed; a disabled-store run
  // must be bit-identical no matter what the payload knobs say.
  const auto trace = small_trace();
  ExperimentConfig plain = small_config(Scheme::kAdc);
  ExperimentConfig perturbed = plain;
  perturbed.payload.seed = 12345;          // differs, but enabled stays false
  perturbed.payload.byte_budget = 999999;  // ignored while disabled
  const auto a = run_experiment(plain, trace);
  const auto b = run_experiment(perturbed, trace);
  EXPECT_TRUE(equal_results(a, b));
  EXPECT_EQ(a.summary.bytes_completed, 0u);
  EXPECT_EQ(a.store.payload_bytes_served, 0u);
}

TEST(PayloadExperiment, EnablingTheStoreDoesNotPerturbRequestFlow) {
  // With no byte budget the caches keep their count-only behavior, so the
  // request-level trajectory (hits, hops, messages) matches the store-off
  // run exactly; only the byte counters appear.
  const auto trace = small_trace();
  const auto off = run_experiment(small_config(Scheme::kAdc), trace);
  ExperimentConfig on = payload_config(Scheme::kAdc);
  const auto with_store = run_experiment(on, trace);
  EXPECT_EQ(off.summary.hits, with_store.summary.hits);
  EXPECT_EQ(off.summary.total_hops, with_store.summary.total_hops);
  EXPECT_EQ(off.origin_served, with_store.origin_served);
  EXPECT_GT(with_store.summary.bytes_completed, 0u);
}

TEST(PayloadExperiment, ByteBudgetReducesCachedBytesAndChangesPolicyRanking) {
  const auto trace = small_trace();
  ExperimentConfig unbounded = payload_config(Scheme::kCarp);
  ExperimentConfig tight = unbounded;
  tight.payload.byte_budget = 64 * 1024;  // a handful of median objects
  const auto free_run = run_experiment(unbounded, trace);
  const auto tight_run = run_experiment(tight, trace);
  EXPECT_LT(tight_run.summary.byte_hit_rate(), free_run.summary.byte_hit_rate());

  // Under the same tight budget, the size-aware policies must at least
  // run and stay conserved (their ranking is workload-dependent; the
  // EXT-BYTES bench reports it).
  for (const cache::Policy policy :
       {cache::Policy::kGdsf, cache::Policy::kSizeLru, cache::Policy::kLfu}) {
    ExperimentConfig config = tight;
    config.baseline_policy = policy;
    const auto result = run_experiment(config, trace);
    EXPECT_EQ(result.summary.completed, trace.size());
    EXPECT_LE(result.summary.bytes_hit, result.summary.bytes_completed);
  }
}

TEST(PayloadExperiment, StripeRegistrationHappensOnlyWithErasure) {
  const auto trace = small_trace();
  ExperimentConfig config = payload_config(Scheme::kAdc);
  const auto plain = run_experiment(config, trace);
  EXPECT_EQ(plain.store.stripes_registered, 0u);

  config.payload.erasure.enabled = true;
  const auto erasure = run_experiment(config, trace);
  EXPECT_GT(erasure.store.stripes_registered, 0u);
  EXPECT_GT(erasure.store.chunks_stored, 0u);
  // Healthy run: the tier stays passive — no recovery traffic at all.
  EXPECT_EQ(erasure.store.degraded_started, 0u);
  EXPECT_EQ(erasure.store.chunk_requests_sent, 0u);
  EXPECT_EQ(erasure.summary.bytes_recovered, 0u);
}

class DegradedReadTest : public ::testing::TestWithParam<Scheme> {};

TEST_P(DegradedReadTest, ConfirmedDeathTriggersDegradedReads) {
  const auto trace = small_trace();
  ExperimentConfig config = payload_config(GetParam());
  config.payload.erasure.enabled = true;
  config.membership.swim.enabled = true;

  // Probe the healthy run to place a permanent crash and size deadlines,
  // exactly as bench/ext_membership does.
  const auto probe = run_experiment(config, trace);
  fault::CrashWindow window;
  window.node = 2;
  window.at = static_cast<SimTime>(static_cast<double>(probe.sim_end_time) * 0.35);
  window.restart = kSimTimeMax;
  window.flush_state = true;
  config.fault_plan.crashes.push_back(window);
  config.request_timeout =
      std::max<SimTime>(static_cast<SimTime>(probe.latency_p99 * 20.0), 1000);

  const auto result = run_experiment(config, trace);
  EXPECT_GT(result.membership.deaths, 0u);  // SWIM confirmed the crash
  EXPECT_GT(result.store.degraded_started, 0u);
  EXPECT_GT(result.store.degraded_recovered, 0u);
  EXPECT_GT(result.summary.bytes_recovered, 0u);
  EXPECT_GT(result.store.chunk_replies_served, 0u);
  // Recovered bytes flow into the hit ledger, never the origin's.
  EXPECT_LE(result.summary.bytes_recovered, result.summary.bytes_hit);
  // Failures are the never-striped cold objects (first requested after the
  // crash); every resolved recovery is one or the other.
  EXPECT_LE(result.store.degraded_recovered + result.store.degraded_failed,
            result.store.degraded_started);

  // And the whole thing is deterministic, churn and recovery included.
  const auto again = run_experiment(config, trace);
  EXPECT_EQ(result.summary.bytes_recovered, again.summary.bytes_recovered);
  EXPECT_EQ(result.store.degraded_started, again.store.degraded_started);
  EXPECT_EQ(result.summary.completed, again.summary.completed);
}

INSTANTIATE_TEST_SUITE_P(Schemes, DegradedReadTest,
                         ::testing::Values(Scheme::kAdc, Scheme::kCarp));

}  // namespace
}  // namespace adc::driver
