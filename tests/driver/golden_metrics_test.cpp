// Golden-value regression test for the metrics extensions: per-owner
// request/hit counters (the fairness inputs), tail-latency percentiles,
// and the fairness ratios themselves, pinned for small fixed-seed
// Figure-11/12 style ADC and CARP runs.  run_experiment() is
// deterministic, so any drift means the simulation or the metrics
// plumbing changed, not just formatting.
//
// Regenerating after an *intentional* behavior change:
//   ADC_GOLDEN_PRINT=1 ./build/tests/adc_tests_driver \
//       --gtest_filter='GoldenMetrics*' 2>&1 | grep GOLDEN
// then paste the printed values over the literals below and say why in
// the commit message.
#include <gtest/gtest.h>

#include <cstdlib>
#include <iostream>

#include "driver/experiment.h"
#include "workload/polygraph.h"

namespace adc::driver {
namespace {

// Same ~1/500-scale workload the integration golden tests use.
workload::Trace golden_trace() {
  workload::PolygraphConfig config;
  config.fill_requests = 2000;
  config.phase2_requests = 3000;
  config.phase3_requests = 2500;
  config.hot_set_size = 200;
  config.seed = 42;
  return workload::generate_polygraph_trace(config);
}

ExperimentConfig golden_config() {
  ExperimentConfig config;
  config.scheme = Scheme::kAdc;
  config.proxies = 5;
  config.adc.single_table_size = 400;
  config.adc.multiple_table_size = 400;
  config.adc.caching_table_size = 200;
  config.seed = 1;
  config.ma_window = 500;
  config.sample_every = 0;
  return config;
}

bool print_golden() { return std::getenv("ADC_GOLDEN_PRINT") != nullptr; }

void print_run(const char* label, const ExperimentResult& result) {
  std::cout.precision(17);
  std::cout << "GOLDEN " << label << " p99=" << result.latency_p99
            << " p999=" << result.latency_p999
            << " fairness=" << result.summary.request_fairness()
            << " hit_fairness=" << result.summary.hit_fairness() << " owner_requests=";
  for (const auto c : result.summary.owner_requests) std::cout << c << ",";
  std::cout << " owner_hits=";
  for (const auto c : result.summary.owner_hits) std::cout << c << ",";
  std::cout << '\n';
}

TEST(GoldenMetrics, AdcOwnerCountersAndTailsArePinned) {
  const auto trace = golden_trace();
  const ExperimentResult result = run_experiment(golden_config(), trace);
  if (print_golden()) print_run("adc", result);

  // The per-owner counters mirror the proxy snapshots exactly.
  ASSERT_EQ(result.summary.owner_requests.size(), 5u);
  ASSERT_EQ(result.proxies.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(result.summary.owner_requests[i], result.proxies[i].requests_received);
    EXPECT_EQ(result.summary.owner_hits[i], result.proxies[i].local_hits);
  }

  // And the summary percentiles mirror ExperimentResult's.
  EXPECT_DOUBLE_EQ(result.summary.latency_p99, result.latency_p99);
  EXPECT_DOUBLE_EQ(result.summary.latency_p999, result.latency_p999);

  EXPECT_EQ(result.summary.owner_requests[0], 3309u);
  EXPECT_EQ(result.summary.owner_requests[1], 3180u);
  EXPECT_EQ(result.summary.owner_requests[2], 3268u);
  EXPECT_EQ(result.summary.owner_requests[3], 3128u);
  EXPECT_EQ(result.summary.owner_requests[4], 3233u);
  EXPECT_EQ(result.summary.owner_hits[0], 817u);
  EXPECT_EQ(result.summary.owner_hits[1], 704u);
  EXPECT_EQ(result.summary.owner_hits[2], 776u);
  EXPECT_EQ(result.summary.owner_hits[3], 732u);
  EXPECT_EQ(result.summary.owner_hits[4], 682u);
  EXPECT_DOUBLE_EQ(result.summary.request_fairness(), 1.0578644501278773);
  EXPECT_DOUBLE_EQ(result.latency_p99, 42.0);
  EXPECT_DOUBLE_EQ(result.latency_p999, 42.0);
}

TEST(GoldenMetrics, CarpOwnerCountersAndTailsArePinned) {
  const auto trace = golden_trace();
  ExperimentConfig config = golden_config();
  config.scheme = Scheme::kCarp;
  const ExperimentResult result = run_experiment(config, trace);
  if (print_golden()) print_run("carp", result);

  ASSERT_EQ(result.summary.owner_requests.size(), 5u);
  EXPECT_EQ(result.summary.owner_requests[0], 2696u);
  EXPECT_EQ(result.summary.owner_requests[1], 2459u);
  EXPECT_EQ(result.summary.owner_requests[2], 2508u);
  EXPECT_EQ(result.summary.owner_requests[3], 3340u);
  EXPECT_EQ(result.summary.owner_requests[4], 2586u);
  EXPECT_EQ(result.summary.owner_hits[0], 889u);
  EXPECT_EQ(result.summary.owner_hits[1], 594u);
  EXPECT_EQ(result.summary.owner_hits[2], 690u);
  EXPECT_EQ(result.summary.owner_hits[3], 1589u);
  EXPECT_EQ(result.summary.owner_hits[4], 769u);
  EXPECT_DOUBLE_EQ(result.summary.request_fairness(), 1.3582757218381456);
  EXPECT_DOUBLE_EQ(result.latency_p99, 24.0);
  EXPECT_DOUBLE_EQ(result.latency_p999, 24.0);
}

}  // namespace
}  // namespace adc::driver
