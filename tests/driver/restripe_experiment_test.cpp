// Proactive re-stripe repair, end-to-end through the simulator: repair-off
// runs stay bit-identical to the repair-free build, and repair-on runs
// close the multi-death data-loss window the post-run stripe census
// measures.
#include <gtest/gtest.h>

#include <algorithm>

#include "driver/experiment.h"
#include "fault/fault_plan.h"
#include "workload/polygraph.h"

namespace adc::driver {
namespace {

workload::Trace small_trace() {
  workload::PolygraphConfig config;
  config.fill_requests = 1500;
  config.phase2_requests = 2500;
  config.phase3_requests = 2000;
  config.hot_set_size = 150;
  config.seed = 3;
  return workload::generate_polygraph_trace(config);
}

// 8 proxies against a k=3 (width 5) stripe: every stripe has 3 members
// outside it, so replacement owners exist even after several deaths.
ExperimentConfig erasure_config(Scheme scheme) {
  ExperimentConfig config;
  config.scheme = scheme;
  config.proxies = 8;
  config.adc.single_table_size = 200;
  config.adc.multiple_table_size = 200;
  config.adc.caching_table_size = 100;
  config.ma_window = 200;
  config.sample_every = 500;
  config.payload.enabled = true;
  config.payload.seed = 97;
  config.payload.erasure.enabled = true;
  config.membership.swim.enabled = true;
  return config;
}

bool equal_results(const ExperimentResult& a, const ExperimentResult& b) {
  return a.summary.completed == b.summary.completed && a.summary.hits == b.summary.hits &&
         a.summary.total_hops == b.summary.total_hops && a.messages == b.messages &&
         a.events == b.events && a.sim_end_time == b.sim_end_time &&
         a.origin_served == b.origin_served;
}

/// Permanent crash of `node` at `fraction` of the probed end time.
fault::CrashWindow crash_at(const ExperimentResult& probe, NodeId node, double fraction) {
  fault::CrashWindow window;
  window.node = node;
  window.at = static_cast<SimTime>(static_cast<double>(probe.sim_end_time) * fraction);
  window.restart = kSimTimeMax;
  window.flush_state = true;
  return window;
}

TEST(RestripeExperiment, DisabledRepairIsInvisible) {
  // With restripe off the repair knobs must not leak into the trajectory:
  // a perturbed-knob run is bit-identical, even across a confirmed death.
  const auto trace = small_trace();
  ExperimentConfig plain = erasure_config(Scheme::kCarp);
  const auto probe = run_experiment(plain, trace);
  plain.fault_plan.crashes.push_back(crash_at(probe, 2, 0.35));
  plain.request_timeout =
      std::max<SimTime>(static_cast<SimTime>(probe.latency_p99 * 20.0), 1000);

  ExperimentConfig perturbed = plain;
  perturbed.payload.erasure.repair_bytes_per_round = 7;  // differs, restripe stays false
  perturbed.payload.erasure.repair_max_attempts = 99;

  const auto a = run_experiment(plain, trace);
  const auto b = run_experiment(perturbed, trace);
  EXPECT_TRUE(equal_results(a, b));
  EXPECT_EQ(a.store.stripes_healed, 0u);
  EXPECT_EQ(a.store.repair_offers, 0u);
  EXPECT_EQ(a.store.repair_rounds, 0u);
}

class RestripeHealTest : public ::testing::TestWithParam<Scheme> {};

TEST_P(RestripeHealTest, ThreeDeathsStrandWithoutRepairAndHealWithIt) {
  // Width-5 stripes survive two deaths arithmetically (3 chunks = k remain)
  // but a third death strands every stripe containing all three victims.
  // Proactive repair re-homes chunks after each confirmed death, so the
  // healed layout never drops below full width for long — by the end of
  // the run no stripe is below k.
  const auto trace = small_trace();
  ExperimentConfig config = erasure_config(GetParam());
  const auto probe = run_experiment(config, trace);
  config.fault_plan.crashes.push_back(crash_at(probe, 2, 0.25));
  config.fault_plan.crashes.push_back(crash_at(probe, 5, 0.45));
  config.fault_plan.crashes.push_back(crash_at(probe, 7, 0.65));
  config.request_timeout =
      std::max<SimTime>(static_cast<SimTime>(probe.latency_p99 * 20.0), 1000);

  const auto off = run_experiment(config, trace);
  EXPECT_GT(off.membership.deaths, 0u);
  EXPECT_GT(off.store.stripe_objects_tracked, 0u);
  // The census over the five survivors finds stripes below k: the objects
  // whose stripe contained all three victims are no longer reconstructible.
  EXPECT_GT(off.store.stripes_stranded, 0u);
  EXPECT_EQ(off.store.stripes_healed, 0u);

  config.payload.erasure.restripe = true;
  config.payload.erasure.repair_bytes_per_round = 128 * 1024;
  const auto on = run_experiment(config, trace);
  EXPECT_GT(on.store.stripes_healed, 0u);
  EXPECT_GT(on.store.repair_adopted, 0u);
  EXPECT_GT(on.store.repair_offers, 0u);
  EXPECT_GT(on.store.repair_rounds, 0u);
  EXPECT_GT(on.store.repair_bytes, 0u);
  // Byte-budgeted pacing: no round ever exceeded the configured budget
  // (every chunk is at most ~85 KiB, under the 128 KiB budget).
  EXPECT_LE(on.store.repair_round_bytes_max, 128u * 1024u);
  // The healed cluster tracks the same object universe with nothing lost.
  EXPECT_GT(on.store.stripe_objects_tracked, 0u);
  EXPECT_EQ(on.store.stripes_stranded, 0u);

  // Deterministic end to end: deaths, elections, rounds and census.
  const auto again = run_experiment(config, trace);
  EXPECT_TRUE(equal_results(on, again));
  EXPECT_EQ(on.store.stripes_healed, again.store.stripes_healed);
  EXPECT_EQ(on.store.repair_bytes, again.store.repair_bytes);
  EXPECT_EQ(on.store.repair_rounds, again.store.repair_rounds);
  EXPECT_EQ(on.store.stripes_stranded, again.store.stripes_stranded);
}

INSTANTIATE_TEST_SUITE_P(Schemes, RestripeHealTest,
                         ::testing::Values(Scheme::kAdc, Scheme::kCarp));

TEST(RestripeExperiment, TwoDeathsStayReconstructibleAndRepairRestoresWidth) {
  // The two-death arithmetic: width-5 stripes losing two members keep
  // exactly k = 3 chunks, so neither run strands anything — but only the
  // repaired run closes the window (its stripes are back at full width;
  // the unrepaired ones are one further loss from being unrecoverable,
  // which ThreeDeathsStrandWithoutRepairAndHealWithIt demonstrates).
  const auto trace = small_trace();
  ExperimentConfig config = erasure_config(Scheme::kCarp);
  const auto probe = run_experiment(config, trace);
  config.fault_plan.crashes.push_back(crash_at(probe, 2, 0.3));
  config.fault_plan.crashes.push_back(crash_at(probe, 5, 0.55));
  config.request_timeout =
      std::max<SimTime>(static_cast<SimTime>(probe.latency_p99 * 20.0), 1000);

  const auto off = run_experiment(config, trace);
  config.payload.erasure.restripe = true;
  config.payload.erasure.repair_bytes_per_round = 128 * 1024;
  const auto on = run_experiment(config, trace);

  EXPECT_EQ(off.store.stripes_stranded, 0u);
  EXPECT_EQ(off.store.stripes_healed, 0u);
  EXPECT_EQ(on.store.stripes_stranded, 0u);
  EXPECT_GT(on.store.stripes_healed, 0u);
  EXPECT_GT(on.store.repair_adopted, 0u);
  EXPECT_LE(on.store.repair_round_bytes_max, 128u * 1024u);
  // Repair never blocks the workload: both runs resolve every request
  // (completed or reclaimed by its deadline after a crash ate it).
  EXPECT_GT(on.summary.completed, 0u);
  EXPECT_GT(off.summary.completed, 0u);
}

}  // namespace
}  // namespace adc::driver
