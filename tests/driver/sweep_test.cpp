#include "driver/sweep.h"

#include <gtest/gtest.h>

#include <sstream>

#include "driver/report.h"
#include "workload/polygraph.h"

namespace adc::driver {
namespace {

workload::Trace tiny_trace() {
  workload::PolygraphConfig config;
  config.fill_requests = 800;
  config.phase2_requests = 1200;
  config.phase3_requests = 1000;
  config.hot_set_size = 100;
  config.seed = 5;
  return workload::generate_polygraph_trace(config);
}

ExperimentConfig base_config() {
  ExperimentConfig config;
  config.proxies = 3;
  config.adc.single_table_size = 150;
  config.adc.multiple_table_size = 150;
  config.adc.caching_table_size = 80;
  config.sample_every = 0;
  return config;
}

TEST(Sweep, TableNames) {
  EXPECT_EQ(swept_table_name(SweptTable::kCaching), "caching");
  EXPECT_EQ(swept_table_name(SweptTable::kMultiple), "multiple");
  EXPECT_EQ(swept_table_name(SweptTable::kSingle), "single");
}

TEST(Sweep, PaperSizesAtFullScale) {
  const auto sizes = paper_sweep_sizes(1.0);
  ASSERT_EQ(sizes.size(), 6u);
  EXPECT_EQ(sizes.front(), 5000u);
  EXPECT_EQ(sizes.back(), 30000u);
  EXPECT_EQ(sizes[1], 10000u);
}

TEST(Sweep, PaperSizesScale) {
  const auto sizes = paper_sweep_sizes(0.1);
  ASSERT_EQ(sizes.size(), 6u);
  EXPECT_EQ(sizes.front(), 500u);
  EXPECT_EQ(sizes.back(), 3000u);
}

TEST(Sweep, PaperSizesNeverZero) {
  for (const std::size_t size : paper_sweep_sizes(1e-9)) EXPECT_GE(size, 1u);
}

TEST(Sweep, ProducesOnePointPerCombination) {
  const auto trace = tiny_trace();
  const auto points = run_table_sweep(base_config(), trace,
                                      {SweptTable::kCaching, SweptTable::kSingle}, {50, 100});
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points[0].table, SweptTable::kCaching);
  EXPECT_EQ(points[0].size, 50u);
  EXPECT_EQ(points[1].size, 100u);
  EXPECT_EQ(points[2].table, SweptTable::kSingle);
}

TEST(Sweep, PointsCarryRealMetrics) {
  const auto trace = tiny_trace();
  const auto points =
      run_table_sweep(base_config(), trace, {SweptTable::kCaching}, {40, 160});
  for (const auto& point : points) {
    EXPECT_GT(point.hit_rate, 0.0);
    EXPECT_LT(point.hit_rate, 1.0);
    EXPECT_GT(point.avg_hops, 2.0);
    EXPECT_GE(point.wall_seconds, 0.0);
  }
  // More cache must not hurt the hit rate on a recurrent workload.
  EXPECT_GE(points[1].hit_rate, points[0].hit_rate);
}

TEST(Sweep, CsvOutputIsWellFormed) {
  const auto trace = tiny_trace();
  const auto points = run_table_sweep(base_config(), trace, {SweptTable::kMultiple}, {60});
  std::ostringstream out;
  print_sweep_csv(out, points);
  const std::string text = out.str();
  EXPECT_NE(text.find("table,size,hit_rate,avg_hops,wall_seconds"), std::string::npos);
  EXPECT_NE(text.find("multiple,60,"), std::string::npos);
}

TEST(Report, FmtPrecision) {
  EXPECT_EQ(fmt(0.123456, 4), "0.1235");
  EXPECT_EQ(fmt(2.0, 2), "2.00");
}

TEST(Report, TableAlignsColumns) {
  std::ostringstream out;
  print_table(out, {{"name", "value"}, {"alpha", "1"}, {"b", "22"}});
  const std::string text = out.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(text.find("----"), std::string::npos);
}

TEST(Report, EmptyTableIsNoOutput) {
  std::ostringstream out;
  print_table(out, {});
  EXPECT_TRUE(out.str().empty());
}

TEST(Report, SeriesCsvHasHeaderAndRows) {
  std::vector<sim::SeriesPoint> series = {{1000, 0.5, 6.0, 15.0}, {2000, 0.6, 5.5, 14.0}};
  std::ostringstream out;
  print_series_csv(out, "adc", series);
  const std::string text = out.str();
  EXPECT_NE(text.find("label,requests,hit_rate_ma"), std::string::npos);
  EXPECT_NE(text.find("adc,1000,0.500000"), std::string::npos);
  EXPECT_NE(text.find("adc,2000,0.600000"), std::string::npos);
}

}  // namespace
}  // namespace adc::driver
