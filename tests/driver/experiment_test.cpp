#include "driver/experiment.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "workload/polygraph.h"

namespace adc::driver {
namespace {

workload::Trace small_trace() {
  workload::PolygraphConfig config;
  config.fill_requests = 1500;
  config.phase2_requests = 2500;
  config.phase3_requests = 2000;
  config.hot_set_size = 150;
  config.seed = 3;
  return workload::generate_polygraph_trace(config);
}

ExperimentConfig small_config(Scheme scheme) {
  ExperimentConfig config;
  config.scheme = scheme;
  config.proxies = 3;
  config.adc.single_table_size = 200;
  config.adc.multiple_table_size = 200;
  config.adc.caching_table_size = 100;
  config.ma_window = 200;
  config.sample_every = 500;
  return config;
}

TEST(SchemeNames, RoundTrip) {
  for (const Scheme scheme :
       {Scheme::kAdc, Scheme::kCarp, Scheme::kConsistent, Scheme::kRendezvous,
        Scheme::kHierarchical, Scheme::kCoordinator, Scheme::kSoap}) {
    const auto parsed = parse_scheme(scheme_name(scheme));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, scheme);
  }
}

TEST(SchemeNames, Aliases) {
  EXPECT_EQ(parse_scheme("hash"), Scheme::kCarp);
  EXPECT_EQ(parse_scheme("ring"), Scheme::kConsistent);
  EXPECT_EQ(parse_scheme("hrw"), Scheme::kRendezvous);
  EXPECT_EQ(parse_scheme("hier"), Scheme::kHierarchical);
  EXPECT_EQ(parse_scheme("central"), Scheme::kCoordinator);
  EXPECT_EQ(parse_scheme("ADC"), Scheme::kAdc);
  EXPECT_FALSE(parse_scheme("nonsense").has_value());
}

class AllSchemesTest : public ::testing::TestWithParam<Scheme> {};

TEST_P(AllSchemesTest, CompletesEveryRequest) {
  const auto trace = small_trace();
  const auto result = run_experiment(small_config(GetParam()), trace);
  EXPECT_EQ(result.summary.completed, trace.size());
}

TEST_P(AllSchemesTest, ConservationHitsPlusOriginEqualsCompleted) {
  const auto trace = small_trace();
  const auto result = run_experiment(small_config(GetParam()), trace);
  EXPECT_EQ(result.summary.hits + result.origin_served, result.summary.completed);
}

TEST_P(AllSchemesTest, MetricsAreSane) {
  const auto trace = small_trace();
  const auto result = run_experiment(small_config(GetParam()), trace);
  EXPECT_GE(result.summary.hit_rate(), 0.0);
  EXPECT_LE(result.summary.hit_rate(), 1.0);
  EXPECT_GE(result.summary.avg_hops(), 2.0);  // at least client->node->client
  EXPECT_GT(result.events, trace.size());
  EXPECT_GT(result.messages, trace.size());
  EXPECT_GT(result.sim_end_time, 0);
  EXPECT_GE(result.wall_seconds, 0.0);
}

TEST_P(AllSchemesTest, DeterministicAcrossRuns) {
  const auto trace = small_trace();
  const auto a = run_experiment(small_config(GetParam()), trace);
  const auto b = run_experiment(small_config(GetParam()), trace);
  EXPECT_EQ(a.summary.hits, b.summary.hits);
  EXPECT_EQ(a.summary.total_hops, b.summary.total_hops);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.sim_end_time, b.sim_end_time);
}

TEST_P(AllSchemesTest, SeedChangesRandomizedSchedules) {
  const auto trace = small_trace();
  ExperimentConfig config = small_config(GetParam());
  const auto a = run_experiment(config, trace);
  config.seed = 99;
  const auto b = run_experiment(config, trace);
  // Entry-proxy choices differ, so message counts almost surely differ
  // for randomized schemes; at minimum nothing crashes and conservation
  // still holds.
  EXPECT_EQ(b.summary.hits + b.origin_served, b.summary.completed);
}

TEST_P(AllSchemesTest, ProxySnapshotsCoverAllProxies) {
  const auto trace = small_trace();
  const auto result = run_experiment(small_config(GetParam()), trace);
  ASSERT_EQ(result.proxies.size(), 3u);
  std::uint64_t received = 0;
  for (const auto& proxy : result.proxies) received += proxy.requests_received;
  EXPECT_GT(received, 0u);
}

TEST_P(AllSchemesTest, SeriesRespectsSampleStride) {
  const auto trace = small_trace();
  const auto result = run_experiment(small_config(GetParam()), trace);
  ASSERT_FALSE(result.series.empty());
  EXPECT_EQ(result.series.front().requests, 500u);
  EXPECT_EQ(result.series.size(), trace.size() / 500);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, AllSchemesTest,
                         ::testing::Values(Scheme::kAdc, Scheme::kCarp, Scheme::kConsistent,
                                           Scheme::kRendezvous, Scheme::kHierarchical,
                                           Scheme::kCoordinator, Scheme::kSoap),
                         [](const auto& info) { return std::string(scheme_name(info.param)); });

TEST(Experiment, TraceStreamWalksWholeTrace) {
  const auto trace = small_trace();
  TraceStream stream(trace);
  std::uint64_t count = 0;
  while (stream.next().has_value()) ++count;
  EXPECT_EQ(count, trace.size());
  EXPECT_EQ(stream.cursor(), trace.size());
  EXPECT_FALSE(stream.next().has_value());
}

TEST(Experiment, SingleProxyDeploymentWorks) {
  ExperimentConfig config = small_config(Scheme::kAdc);
  config.proxies = 1;
  const auto trace = small_trace();
  const auto result = run_experiment(config, trace);
  EXPECT_EQ(result.summary.completed, trace.size());
  EXPECT_EQ(result.summary.hits + result.origin_served, trace.size());
}

TEST(Experiment, ConcurrencyCompletesEverything) {
  ExperimentConfig config = small_config(Scheme::kAdc);
  config.concurrency = 8;
  const auto trace = small_trace();
  const auto result = run_experiment(config, trace);
  EXPECT_EQ(result.summary.completed, trace.size());
  EXPECT_EQ(result.summary.hits + result.origin_served, trace.size());
}

TEST(Experiment, BaselineCapacityDefaultsToCachingTable) {
  // A CARP run with explicit capacity equal to the ADC caching size must
  // match the default-capacity run exactly.
  const auto trace = small_trace();
  ExperimentConfig defaulted = small_config(Scheme::kCarp);
  ExperimentConfig explicit_cap = defaulted;
  explicit_cap.baseline_cache_capacity = defaulted.adc.caching_table_size;
  const auto a = run_experiment(defaulted, trace);
  const auto b = run_experiment(explicit_cap, trace);
  EXPECT_EQ(a.summary.hits, b.summary.hits);
  EXPECT_EQ(a.summary.total_hops, b.summary.total_hops);
}

TEST(Experiment, EntryCachingChangesCarpBehaviour) {
  const auto trace = small_trace();
  ExperimentConfig bypass = small_config(Scheme::kCarp);
  ExperimentConfig through = bypass;
  through.entry_caching = true;
  const auto a = run_experiment(bypass, trace);
  const auto b = run_experiment(through, trace);
  // Entry caching adds replicas: it must change (typically raise) the hit
  // count on a recurrent workload.
  EXPECT_NE(a.summary.hits, b.summary.hits);
}

TEST(Experiment, SlowProxyRaisesLatencyForContentAddressedSchemes) {
  const auto trace = small_trace();
  driver::ExperimentConfig even = small_config(Scheme::kCarp);
  driver::ExperimentConfig slow = even;
  slow.slow_proxy_index = 1;
  slow.slow_proxy_delay = 20;
  const auto even_result = run_experiment(even, trace);
  const auto slow_result = run_experiment(slow, trace);
  EXPECT_GT(slow_result.summary.avg_latency(), even_result.summary.avg_latency() + 1.0);
  // Hits and hops are latency-independent for CARP (no randomized search).
  EXPECT_EQ(slow_result.summary.hits, even_result.summary.hits);
}

TEST(Experiment, CoordinatorRoutesAroundTheSlowProxy) {
  const auto trace = small_trace();
  driver::ExperimentConfig config = small_config(Scheme::kCoordinator);
  config.slow_proxy_index = 1;
  config.slow_proxy_delay = 50;
  const auto result = run_experiment(config, trace);
  std::uint64_t total = 0;
  for (const auto& proxy : result.proxies) total += proxy.requests_received;
  const double slow_share =
      static_cast<double>(result.proxies[1].requests_received) / static_cast<double>(total);
  // Far below the fair 1/3 share: the response-time learning avoids it.
  EXPECT_LT(slow_share, 0.15);
}

TEST(Experiment, HopPercentilesAreOrderedAndPlausible) {
  const auto trace = small_trace();
  for (const Scheme scheme : {Scheme::kAdc, Scheme::kCarp}) {
    const auto result = run_experiment(small_config(scheme), trace);
    EXPECT_GE(result.hops_p50, 2) << scheme_name(scheme);
    EXPECT_LE(result.hops_p50, result.hops_p95) << scheme_name(scheme);
    EXPECT_LE(result.hops_p95, result.hops_max) << scheme_name(scheme);
    EXPECT_NEAR(result.summary.avg_hops(), result.hops_p50, 4.0) << scheme_name(scheme);
  }
}

TEST(Experiment, CarpLoadFactorsShiftOwnership) {
  const auto trace = small_trace();
  ExperimentConfig config = small_config(Scheme::kCarp);
  config.collect_cache_contents = true;
  const auto even = run_experiment(config, trace);
  config.carp_load_factors = {1.0, 1.0, 0.2};
  const auto skewed = run_experiment(config, trace);
  // The down-weighted proxy owns a fraction of the URL space, so the
  // owner-forwarded traffic it receives drops well below the even run's.
  EXPECT_LT(skewed.proxies[2].requests_received,
            even.proxies[2].requests_received * 8 / 10);
  // And its peers pick up the difference.
  EXPECT_GT(skewed.proxies[0].requests_received, even.proxies[0].requests_received);
  // Conservation still holds.
  EXPECT_EQ(skewed.summary.hits + skewed.origin_served, trace.size());
}

TEST(Experiment, TraceFileRoundTripGivesIdenticalResults) {
  const auto trace = small_trace();
  const std::string path = ::testing::TempDir() + "/adc_experiment_roundtrip.trace";
  ASSERT_TRUE(trace.save_binary(path));
  workload::Trace reloaded;
  std::string error;
  ASSERT_TRUE(workload::Trace::load_binary(path, &reloaded, &error)) << error;
  const auto direct = run_experiment(small_config(Scheme::kAdc), trace);
  const auto from_disk = run_experiment(small_config(Scheme::kAdc), reloaded);
  EXPECT_EQ(direct.summary.hits, from_disk.summary.hits);
  EXPECT_EQ(direct.summary.total_hops, from_disk.summary.total_hops);
  EXPECT_EQ(direct.messages, from_disk.messages);
  std::remove(path.c_str());
}

TEST(Experiment, AdcTotalsAggregatePerProxyStats) {
  const auto trace = small_trace();
  const auto result = run_experiment(small_config(Scheme::kAdc), trace);
  EXPECT_GT(result.adc_totals.requests_received, 0u);
  EXPECT_EQ(result.adc_totals.local_hits, result.summary.hits);
  EXPECT_GT(result.adc_totals.replies_relayed, 0u);
}

}  // namespace
}  // namespace adc::driver
