#include "driver/analysis.h"

#include <gtest/gtest.h>

#include "workload/polygraph.h"

namespace adc::driver {
namespace {

TEST(LoadBalance, EmptyIsZeros) {
  const LoadStats stats = load_balance({});
  EXPECT_EQ(stats.total, 0u);
  EXPECT_EQ(stats.peak, 0u);
  EXPECT_EQ(stats.peak_share, 0.0);
  EXPECT_EQ(stats.cv, 0.0);
}

TEST(LoadBalance, PerfectlyEven) {
  std::vector<ProxySnapshot> proxies(4);
  for (auto& proxy : proxies) proxy.requests_received = 100;
  const LoadStats stats = load_balance(proxies);
  EXPECT_EQ(stats.total, 400u);
  EXPECT_EQ(stats.peak, 100u);
  EXPECT_DOUBLE_EQ(stats.peak_share, 0.25);
  EXPECT_DOUBLE_EQ(stats.cv, 0.0);
}

TEST(LoadBalance, SkewShowsInPeakAndCv) {
  std::vector<ProxySnapshot> proxies(2);
  proxies[0].requests_received = 300;
  proxies[1].requests_received = 100;
  const LoadStats stats = load_balance(proxies);
  EXPECT_DOUBLE_EQ(stats.peak_share, 0.75);
  EXPECT_DOUBLE_EQ(stats.cv, 0.5);  // mean 200, sd 100
}

TEST(Duplication, PartitionedCachesFactorOne) {
  std::vector<ProxySnapshot> proxies(2);
  proxies[0].cached_ids = {1, 2, 3};
  proxies[1].cached_ids = {4, 5};
  const DuplicationStats stats = duplication(proxies);
  EXPECT_EQ(stats.total_cached, 5u);
  EXPECT_EQ(stats.distinct_cached, 5u);
  EXPECT_DOUBLE_EQ(stats.factor, 1.0);
}

TEST(Duplication, ReplicatedCachesRaiseFactor) {
  std::vector<ProxySnapshot> proxies(3);
  proxies[0].cached_ids = {1, 2};
  proxies[1].cached_ids = {1, 2};
  proxies[2].cached_ids = {1, 3};
  const DuplicationStats stats = duplication(proxies);
  EXPECT_EQ(stats.total_cached, 6u);
  EXPECT_EQ(stats.distinct_cached, 3u);
  EXPECT_DOUBLE_EQ(stats.factor, 2.0);
}

TEST(Duplication, EmptyCachesAreZero) {
  const DuplicationStats stats = duplication(std::vector<ProxySnapshot>(3));
  EXPECT_EQ(stats.total_cached, 0u);
  EXPECT_EQ(stats.factor, 0.0);
}

class AnalysisEndToEnd : public ::testing::Test {
 protected:
  static workload::Trace trace() {
    workload::PolygraphConfig config;
    config.fill_requests = 1000;
    config.phase2_requests = 2000;
    config.phase3_requests = 1500;
    config.hot_set_size = 120;
    config.seed = 41;
    return workload::generate_polygraph_trace(config);
  }

  static ExperimentConfig config(Scheme scheme) {
    ExperimentConfig out;
    out.scheme = scheme;
    out.proxies = 3;
    out.adc.single_table_size = 200;
    out.adc.multiple_table_size = 200;
    out.adc.caching_table_size = 100;
    out.ma_window = 200;
    out.sample_every = 200;
    out.collect_cache_contents = true;
    return out;
  }
};

TEST_F(AnalysisEndToEnd, PhaseBreakdownCoversWholeTrace) {
  const auto t = trace();
  const auto result = run_experiment(config(Scheme::kAdc), t);
  const auto phases = phase_breakdown(result, t.phases(), t.size());
  ASSERT_EQ(phases.size(), 3u);
  EXPECT_EQ(phases[0].name, "fill");
  EXPECT_EQ(phases[0].begin, 0u);
  EXPECT_EQ(phases[0].end, t.phases().fill_end);
  EXPECT_EQ(phases[2].end, t.size());
  for (const auto& phase : phases) EXPECT_GT(phase.samples, 0u) << phase.name;
  // Fill is cold; the later phases are warmer.
  EXPECT_LT(phases[0].hit_rate, phases[1].hit_rate);
  EXPECT_LT(phases[0].hit_rate, phases[2].hit_rate);
}

TEST_F(AnalysisEndToEnd, CarpPartitionsAdcReplicates) {
  const auto t = trace();
  const auto carp = run_experiment(config(Scheme::kCarp), t);
  const auto carp_dup = duplication(carp.proxies);
  EXPECT_GT(carp_dup.total_cached, 0u);
  EXPECT_DOUBLE_EQ(carp_dup.factor, 1.0);

  const auto adc = run_experiment(config(Scheme::kAdc), t);
  const auto adc_dup = duplication(adc.proxies);
  EXPECT_GT(adc_dup.total_cached, 0u);
  EXPECT_GT(adc_dup.factor, 1.05);
}

TEST_F(AnalysisEndToEnd, CachedIdsMatchReportedCounts) {
  const auto t = trace();
  for (const Scheme scheme : {Scheme::kAdc, Scheme::kCarp, Scheme::kSoap}) {
    const auto result = run_experiment(config(scheme), t);
    for (const auto& proxy : result.proxies) {
      EXPECT_EQ(proxy.cached_ids.size(), proxy.cached_objects)
          << scheme_name(scheme) << " " << proxy.name;
    }
  }
}

TEST_F(AnalysisEndToEnd, ContentsNotCollectedByDefault) {
  const auto t = trace();
  ExperimentConfig no_contents = config(Scheme::kAdc);
  no_contents.collect_cache_contents = false;
  const auto result = run_experiment(no_contents, t);
  for (const auto& proxy : result.proxies) EXPECT_TRUE(proxy.cached_ids.empty());
}

TEST_F(AnalysisEndToEnd, RunSeedsAggregatesDeterministically) {
  const auto t = trace();
  const auto summary = run_seeds(config(Scheme::kAdc), t, {1, 2, 3, 4});
  EXPECT_EQ(summary.runs, 4u);
  EXPECT_GT(summary.hit_rate_mean, 0.0);
  EXPECT_LT(summary.hit_rate_mean, 1.0);
  EXPECT_GE(summary.hit_rate_sd, 0.0);
  EXPECT_GT(summary.hops_mean, 2.0);
  // Same seed list twice: identical aggregates (everything deterministic).
  const auto again = run_seeds(config(Scheme::kAdc), t, {1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(summary.hit_rate_mean, again.hit_rate_mean);
  EXPECT_DOUBLE_EQ(summary.hit_rate_sd, again.hit_rate_sd);
}

TEST_F(AnalysisEndToEnd, RunSeedsSingleSeedHasZeroSd) {
  const auto t = trace();
  const auto summary = run_seeds(config(Scheme::kCarp), t, {7});
  EXPECT_EQ(summary.runs, 1u);
  EXPECT_EQ(summary.hit_rate_sd, 0.0);
  EXPECT_EQ(summary.hops_sd, 0.0);
}

TEST_F(AnalysisEndToEnd, RunSeedsEmptyIsZeros) {
  const auto t = trace();
  const auto summary = run_seeds(config(Scheme::kAdc), t, {});
  EXPECT_EQ(summary.runs, 0u);
  EXPECT_EQ(summary.hit_rate_mean, 0.0);
}

TEST_F(AnalysisEndToEnd, LoadBalanceFromRealRunIsReasonable) {
  const auto t = trace();
  const auto result = run_experiment(config(Scheme::kAdc), t);
  const auto load = load_balance(result.proxies);
  EXPECT_GT(load.total, t.size());  // forwarding multiplies receipts
  EXPECT_LT(load.peak_share, 0.55);
  EXPECT_LT(load.cv, 0.5);
}

}  // namespace
}  // namespace adc::driver
