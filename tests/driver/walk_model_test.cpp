#include "driver/walk_model.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/adc_proxy.h"
#include "proxy/client.h"
#include "proxy/origin_server.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace adc::driver {
namespace {

// --- Closed-form base cases ----------------------------------------------

TEST(WalkModel, SingleProxyNoReplica) {
  // n=1, r=0: entry must pick itself, loop, go to the origin.
  // Forward path: client->P, P->P, P->origin = 3 messages; 6 hops.
  const WalkPrediction p = predict_walk({1, 0, 8});
  EXPECT_DOUBLE_EQ(p.hit_probability, 0.0);
  EXPECT_DOUBLE_EQ(p.expected_forward_messages, 3.0);
  EXPECT_DOUBLE_EQ(p.expected_hops, 6.0);
}

TEST(WalkModel, SingleProxyWithReplica) {
  const WalkPrediction p = predict_walk({1, 1, 8});
  EXPECT_DOUBLE_EQ(p.hit_probability, 1.0);
  EXPECT_DOUBLE_EQ(p.expected_hops, 2.0);
}

TEST(WalkModel, AllProxiesHold) {
  const WalkPrediction p = predict_walk({5, 5, 8});
  EXPECT_DOUBLE_EQ(p.hit_probability, 1.0);
  EXPECT_DOUBLE_EQ(p.expected_hops, 2.0);
}

TEST(WalkModel, ZeroForwardBudget) {
  // F=0: a non-holder entry sends straight to the origin (2 messages).
  const WalkPrediction p = predict_walk({5, 1, 0});
  EXPECT_DOUBLE_EQ(p.hit_probability, 0.2);  // only the entry-holder case
  // E[m] = 0.2*1 + 0.8*2 = 1.8.
  EXPECT_DOUBLE_EQ(p.expected_forward_messages, 1.8);
}

TEST(WalkModel, TwoProxiesOneReplicaOneForward) {
  // n=2, r=1, F=1.  Entry holder: 1/2 -> hit, m=1.  Else the walk picks
  // holder (1/2: hit, m=2) or itself (1/2: loop, m=3).
  const WalkPrediction p = predict_walk({2, 1, 1});
  EXPECT_DOUBLE_EQ(p.hit_probability, 0.5 + 0.5 * 0.5);
  EXPECT_DOUBLE_EQ(p.expected_forward_messages, 0.5 * 1 + 0.25 * 2 + 0.25 * 3);
}

TEST(WalkModel, MoreReplicasNeverHurt) {
  for (int f : {1, 4, 8}) {
    double previous_hit = -1.0;
    double previous_hops = 1e9;
    for (int r = 0; r <= 6; ++r) {
      const WalkPrediction p = predict_walk({6, r, f});
      EXPECT_GE(p.hit_probability, previous_hit) << "r=" << r << " f=" << f;
      EXPECT_LE(p.expected_hops, previous_hops + 1e-12) << "r=" << r << " f=" << f;
      previous_hit = p.hit_probability;
      previous_hops = p.expected_hops;
    }
  }
}

TEST(WalkModel, BudgetSaturatesOnceLoopsDominate) {
  // With n proxies, a walk can use at most n distinct non-holders; beyond
  // that every termination is a loop, so F past n changes nothing.
  const WalkPrediction at_n = predict_walk({5, 2, 5});
  const WalkPrediction beyond = predict_walk({5, 2, 50});
  EXPECT_DOUBLE_EQ(at_n.hit_probability, beyond.hit_probability);
  EXPECT_DOUBLE_EQ(at_n.expected_hops, beyond.expected_hops);
}

// --- Monte-Carlo cross-check of the chain itself --------------------------

TEST(WalkModel, MatchesMonteCarloSimulationOfTheProcess) {
  util::Rng rng(2718);
  for (const auto& params : std::vector<WalkModelParams>{
           {3, 0, 8}, {5, 1, 8}, {5, 3, 8}, {8, 2, 3}, {4, 2, 1}}) {
    const WalkPrediction predicted = predict_walk(params);
    constexpr int kSamples = 200000;
    std::uint64_t hits = 0;
    std::uint64_t messages = 0;
    for (int s = 0; s < kSamples; ++s) {
      // Holders are proxies [0, r); entry uniform.
      const auto entry = static_cast<int>(rng.below(static_cast<std::uint64_t>(params.proxies)));
      std::uint64_t m = 1;
      if (entry < params.replicas) {
        ++hits;
        messages += m;
        continue;
      }
      std::vector<bool> visited(static_cast<std::size_t>(params.proxies), false);
      visited[static_cast<std::size_t>(entry)] = true;
      int j = 0;
      while (true) {
        if (j >= params.max_forwards) {
          m += 1;  // to origin
          break;
        }
        const auto target =
            static_cast<int>(rng.below(static_cast<std::uint64_t>(params.proxies)));
        m += 1;
        if (target < params.replicas) {
          ++hits;
          break;
        }
        if (visited[static_cast<std::size_t>(target)]) {
          m += 1;  // loop detected, forwarded to origin
          break;
        }
        visited[static_cast<std::size_t>(target)] = true;
        ++j;
      }
      messages += m;
    }
    const double mc_hit = static_cast<double>(hits) / kSamples;
    const double mc_messages = static_cast<double>(messages) / kSamples;
    EXPECT_NEAR(mc_hit, predicted.hit_probability, 0.005)
        << "n=" << params.proxies << " r=" << params.replicas << " F=" << params.max_forwards;
    EXPECT_NEAR(mc_messages, predicted.expected_forward_messages, 0.01)
        << "n=" << params.proxies << " r=" << params.replicas << " F=" << params.max_forwards;
  }
}

// --- Validation against the REAL simulator --------------------------------

TEST(WalkModel, PredictsRealSimulatorColdSearches) {
  // All-unique objects, tables large enough to never evict but never
  // consulted twice: every journey is a pure cold walk (r = 0).
  for (const int n : {2, 3, 5}) {
    core::AdcConfig config;
    config.single_table_size = 100000;
    config.multiple_table_size = 1000;
    config.caching_table_size = 100;
    config.max_forwards = 8;

    sim::Simulator sim(99);
    std::vector<NodeId> ids;
    for (int i = 0; i < n; ++i) ids.push_back(i);
    for (int i = 0; i < n; ++i) {
      sim.add_node(std::make_unique<core::AdcProxy>(i, "p" + std::to_string(i), config, ids,
                                                    static_cast<NodeId>(n)));
    }
    sim.add_node(std::make_unique<proxy::OriginServer>(static_cast<NodeId>(n), "origin"));
    std::vector<ObjectId> requests;
    for (int i = 0; i < 30000; ++i) requests.push_back(static_cast<ObjectId>(i + 1));
    proxy::VectorStream stream(requests);
    auto client_node = std::make_unique<proxy::Client>(static_cast<NodeId>(n + 1), "client",
                                                       stream, ids);
    auto* client = client_node.get();
    sim.add_node(std::move(client_node));
    client->start(sim);
    sim.run();

    const WalkPrediction predicted = predict_walk({n, 0, config.max_forwards});
    EXPECT_EQ(sim.metrics().summary().hits, 0u) << "n=" << n;
    EXPECT_NEAR(sim.metrics().summary().avg_hops(), predicted.expected_hops, 0.05)
        << "n=" << n;
  }
}

TEST(WalkModel, PredictsRealSimulatorWithWarmedReplicas) {
  // r proxies are warmed holders; everyone else is pristine.  A fresh
  // deployment per sample keeps every probe a pure cold walk.
  constexpr int kProxies = 5;
  constexpr int kForwards = 8;
  constexpr int kSamples = 3000;
  for (const int replicas : {1, 3}) {
    std::uint64_t hits = 0;
    double hops = 0.0;
    for (int s = 0; s < kSamples; ++s) {
      core::AdcConfig config;
      config.single_table_size = 64;
      config.multiple_table_size = 64;
      config.caching_table_size = 16;
      config.max_forwards = kForwards;

      sim::Simulator sim(static_cast<std::uint64_t>(s) + 1);
      std::vector<NodeId> ids;
      for (int i = 0; i < kProxies; ++i) ids.push_back(i);
      std::vector<core::AdcProxy*> proxies;
      for (int i = 0; i < kProxies; ++i) {
        auto node = std::make_unique<core::AdcProxy>(i, "p" + std::to_string(i), config, ids,
                                                     kProxies);
        proxies.push_back(node.get());
        sim.add_node(std::move(node));
      }
      sim.add_node(std::make_unique<proxy::OriginServer>(kProxies, "origin"));
      proxy::VectorStream stream({777});
      auto client_node =
          std::make_unique<proxy::Client>(kProxies + 1, "client", stream, ids);
      auto* client = client_node.get();
      sim.add_node(std::move(client_node));
      for (int i = 0; i < replicas; ++i) proxies[static_cast<std::size_t>(i)]->warm_cache(777);

      client->start(sim);
      sim.run();
      hits += sim.metrics().summary().hits;
      hops += sim.metrics().summary().avg_hops();
    }
    const WalkPrediction predicted = predict_walk({kProxies, replicas, kForwards});
    EXPECT_NEAR(static_cast<double>(hits) / kSamples, predicted.hit_probability, 0.03)
        << "replicas=" << replicas;
    EXPECT_NEAR(hops / kSamples, predicted.expected_hops, 0.12) << "replicas=" << replicas;
  }
}

}  // namespace
}  // namespace adc::driver
