// Live-cluster payload and erasure tests (ctest label: tier2-net).
//
// Two claims ride on the payload store once real sockets are involved.
// First, the byte ledger is not a simulation artifact: a live CARP replay
// (deterministic routing, one request in flight) must reproduce the
// simulator's byte counters transfer for transfer, with every body sample
// checksum-verified on receipt.  Second, the erasure tier's degraded
// reads survive contact with a real death: kill one daemon, let SWIM
// confirm it, and the dead member's previously-fetched objects are
// rebuilt from surviving stripe chunks — served as hits, not refetched
// from the origin.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/adc_config.h"
#include "driver/experiment.h"
#include "hash/carp.h"
#include "net/socket.h"
#include "proxy/hashing_proxy.h"
#include "server/daemon.h"
#include "server/loadgen.h"
#include "workload/polygraph.h"
#include "workload/trace.h"

namespace adc {
namespace {

constexpr int kProxies = 5;
constexpr NodeId kOriginId = 5;  // run_experiment layout: proxies [0,5), origin, client
constexpr NodeId kClientId = 6;
constexpr NodeId kVictim = 2;

/// Same fast SWIM timings as membership_test.cpp: a silent death is
/// confirmed in well under a second of wall clock.
membership::MembershipConfig fast_membership(std::uint64_t seed) {
  membership::MembershipConfig config;
  config.swim.enabled = true;
  config.swim.ping_interval = 100'000;
  config.swim.ack_timeout = 40'000;
  config.swim.indirect_timeout = 40'000;
  config.swim.suspect_timeout = 300'000;
  config.swim.dead_probe_interval = 600'000;
  config.swim.seed = seed;
  config.repair.interval = 200'000;
  return config;
}

/// Killable loopback cluster exposing the daemons, so tests can poll
/// membership_epoch() and read payload stats after shutdown.
class PayloadCluster {
 public:
  explicit PayloadCluster(std::vector<server::DaemonConfig> configs)
      : configs_(std::move(configs)) {
    daemons_.resize(configs_.size());
    threads_.resize(configs_.size());
    for (std::size_t i = 0; i < configs_.size(); ++i) {
      configs_[i].listen = net::Endpoint{"127.0.0.1", 0};
      daemons_[i] = std::make_unique<server::NodeDaemon>(configs_[i]);
      std::string error;
      const std::uint16_t port = daemons_[i]->bind(&error);
      EXPECT_NE(port, 0) << error;
      configs_[i].listen.port = port;
      endpoints_[configs_[i].node_id] = net::Endpoint{"127.0.0.1", port};
    }
    for (std::size_t i = 0; i < daemons_.size(); ++i) {
      daemons_[i]->set_peers(endpoints_);
      threads_[i] = std::thread([daemon = daemons_[i].get()]() { daemon->run(); });
    }
  }

  ~PayloadCluster() { shutdown(); }

  void kill(std::size_t i) {
    daemons_[i]->stop();
    threads_[i].join();
    daemons_[i].reset();
  }

  void shutdown() {
    for (std::size_t i = 0; i < daemons_.size(); ++i) {
      if (daemons_[i] == nullptr) continue;
      daemons_[i]->stop();
      if (threads_[i].joinable()) threads_[i].join();
    }
  }

  server::NodeDaemon& daemon(std::size_t i) { return *daemons_[i]; }

  bool await_epoch(std::uint64_t want, std::chrono::seconds deadline) {
    const auto until = std::chrono::steady_clock::now() + deadline;
    while (std::chrono::steady_clock::now() < until) {
      bool all = true;
      for (const auto& daemon : daemons_) {
        if (daemon == nullptr || daemon->detector() == nullptr) continue;
        if (daemon->membership_epoch() < want) all = false;
      }
      if (all) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return false;
  }

  std::map<NodeId, net::Endpoint> proxy_endpoints(bool include_victim) const {
    std::map<NodeId, net::Endpoint> out;
    for (const auto& [id, endpoint] : endpoints_) {
      if (id == kOriginId) continue;
      if (!include_victim && id == kVictim) continue;
      out[id] = endpoint;
    }
    return out;
  }

 private:
  std::vector<server::DaemonConfig> configs_;
  std::vector<std::unique_ptr<server::NodeDaemon>> daemons_;
  std::vector<std::thread> threads_;
  std::map<NodeId, net::Endpoint> endpoints_;
};

std::vector<server::DaemonConfig> carp_configs(const store::PayloadConfig& payload,
                                               bool membership) {
  std::vector<server::DaemonConfig> configs;
  for (NodeId id = 0; id <= kOriginId; ++id) {
    server::DaemonConfig config;
    config.node_id = id;
    config.role = id == kOriginId ? server::DaemonRole::kOrigin
                                  : server::DaemonRole::kCarpProxy;
    config.proxy_ids = {0, 1, 2, 3, 4};
    config.origin_id = kOriginId;
    config.adc.caching_table_size = 1000;
    config.carp_cache_capacity = 1000;
    config.seed = 1;
    config.payload = payload;
    if (membership) config.membership = fast_membership(/*seed=*/7);
    configs.push_back(std::move(config));
  }
  return configs;
}

server::LoadGenConfig loadgen_config(std::map<NodeId, net::Endpoint> proxies,
                                     int concurrency) {
  server::LoadGenConfig lg;
  lg.client_id = kClientId;
  lg.proxies = std::move(proxies);
  lg.concurrency = concurrency;
  lg.entry = server::EntryChoice::kRoundRobin;
  lg.idle_timeout_ms = 30000;
  lg.request_timeout_ms = 2000;
  lg.health.max_backoff_us = 250'000;
  return lg;
}

/// The live CARP owner map at startup: same member names as the daemon
/// and the simulator, so ownership computed here matches both.
hash::CarpArray startup_owner_map() {
  std::vector<hash::CarpArray::Member> members;
  for (NodeId id = 0; id < kProxies; ++id) {
    members.push_back({"proxy[" + std::to_string(id) + "]", id, 1.0});
  }
  return hash::CarpArray(std::move(members));
}

TEST(ErasureCluster, CarpByteLedgerMatchesSimulatorExactly) {
  // Deterministic routing + one request in flight = the live cluster's
  // transfer sequence is the simulator's.  With the payload store on, the
  // byte counters must agree exactly — far inside the 1% the validation
  // story asks for — and every body sample must checksum-verify.
  auto poly = workload::PolygraphConfig::scaled(0.004);  // ~16k requests
  poly.seed = 42;
  const workload::Trace trace = workload::generate_polygraph_trace(poly);

  store::PayloadConfig payload;
  payload.enabled = true;
  payload.seed = 97;

  driver::ExperimentConfig sim_config;
  sim_config.scheme = driver::Scheme::kCarp;
  sim_config.proxies = kProxies;
  sim_config.adc.caching_table_size = 1000;
  sim_config.entry_policy = proxy::EntryPolicy::kRoundRobin;
  sim_config.concurrency = 1;
  sim_config.seed = 1;
  sim_config.payload = payload;
  const driver::ExperimentResult expected = run_experiment(sim_config, trace);
  ASSERT_EQ(expected.summary.completed, trace.size());
  ASSERT_GT(expected.summary.bytes_completed, 0u);

  PayloadCluster cluster(carp_configs(payload, /*membership=*/false));
  server::LoadGenerator loadgen(loadgen_config(cluster.proxy_endpoints(true), 1));
  std::string error;
  ASSERT_TRUE(loadgen.connect(&error)) << error;
  const auto report = loadgen.run(trace.requests());
  ASSERT_FALSE(report.timed_out);
  cluster.shutdown();

  EXPECT_EQ(report.completed, expected.summary.completed);
  EXPECT_EQ(report.hits, expected.summary.hits);
  EXPECT_EQ(report.bytes_completed, expected.summary.bytes_completed);
  EXPECT_EQ(report.bytes_hit, expected.summary.bytes_hit);
  EXPECT_NEAR(report.byte_hit_rate(), expected.summary.byte_hit_rate(), 1e-12);

  // Every reply that crossed the wire carried a verified body sample.
  std::uint64_t verified = 0;
  for (std::size_t i = 0; i < kProxies; ++i) {
    const auto& stats = cluster.daemon(i).stats();
    verified += stats.bodies_verified;
    EXPECT_EQ(stats.body_verify_failures, 0u) << "daemon " << i;
  }
  EXPECT_GT(verified, 0u);
}

TEST(ErasureCluster, DegradedReadsServeTheDeadMembersObjects) {
  // Warm the whole cluster (every fetched object is striped across all 5
  // members), kill the victim, let SWIM confirm the death, then request
  // each victim-owned object exactly once.  The survivors hold 4 of its 5
  // stripe chunks — one more than k = 3 — so at least 90% of those
  // requests must complete as degraded reads, their bytes served from
  // chunks instead of the origin.
  auto poly = workload::PolygraphConfig::scaled(0.004);  // ~16k requests
  poly.seed = 42;
  const std::vector<ObjectId> objects =
      workload::generate_polygraph_trace(poly).requests();
  const std::size_t warm_until = objects.size() * 6 / 10;

  store::PayloadConfig payload;
  payload.enabled = true;
  payload.seed = 97;
  payload.erasure.enabled = true;
  payload.erasure.data_chunks = 3;

  PayloadCluster cluster(carp_configs(payload, /*membership=*/true));

  // Warm phase across all 5 members: every object is origin-fetched at
  // least once, so its owner striped it to the other four.
  {
    server::LoadGenerator warmup(loadgen_config(cluster.proxy_endpoints(true), 4));
    std::string error;
    ASSERT_TRUE(warmup.connect(&error)) << error;
    const auto warm = warmup.run(
        {objects.begin(), objects.begin() + static_cast<std::ptrdiff_t>(warm_until)});
    ASSERT_FALSE(warm.timed_out);
    EXPECT_EQ(warm.completed + warm.failed, static_cast<std::uint64_t>(warm_until));
  }

  cluster.kill(kVictim);
  ASSERT_TRUE(cluster.await_epoch(1, std::chrono::seconds(10)))
      << "survivors never confirmed the silent death";

  // The dead member's share of the URL space, restricted to objects the
  // warm phase actually striped — each requested once, so a plain cache
  // hit at the reassigned owner cannot masquerade as a recovery.
  const hash::CarpArray owners = startup_owner_map();
  std::vector<ObjectId> victims;
  std::set<ObjectId> seen;
  for (std::size_t i = 0; i < warm_until; ++i) {
    const ObjectId object = objects[i];
    if (owners.owner(object) == kVictim && seen.insert(object).second) {
      victims.push_back(object);
    }
  }
  ASSERT_GT(victims.size(), 100u) << "victim owned too little of the trace";

  server::LoadGenerator loadgen(loadgen_config(cluster.proxy_endpoints(false), 4));
  std::string error;
  ASSERT_TRUE(loadgen.connect(&error)) << error;
  const auto measured = loadgen.run(victims);
  ASSERT_FALSE(measured.timed_out);
  cluster.shutdown();

  EXPECT_EQ(measured.completed + measured.failed,
            static_cast<std::uint64_t>(victims.size()));
  ASSERT_GT(measured.completed, 0u);

  // The headline claim: >= 90% of the dead member's objects came back as
  // degraded reads, and their bytes landed in the hit ledger — near-zero
  // origin traffic for data the cluster already held.
  EXPECT_GE(static_cast<double>(measured.degraded_reads),
            0.9 * static_cast<double>(measured.completed))
      << measured.text();
  EXPECT_GT(measured.bytes_recovered, 0u);
  EXPECT_GE(static_cast<double>(measured.bytes_hit),
            0.9 * static_cast<double>(measured.bytes_completed));

  // The survivors' tiers did the serving, with verified chunk bodies.
  std::uint64_t recovered = 0, chunk_replies = 0;
  for (std::size_t i = 0; i < kProxies; ++i) {
    if (i == kVictim) continue;
    const auto& proxy =
        static_cast<const proxy::HashingProxy&>(cluster.daemon(i).hosted());
    ASSERT_NE(proxy.erasure(), nullptr) << "daemon " << i;
    recovered += proxy.erasure()->stats().degraded_recovered;
    chunk_replies += proxy.erasure()->stats().chunk_replies_served;
    EXPECT_EQ(cluster.daemon(i).stats().body_verify_failures, 0u) << "daemon " << i;
  }
  EXPECT_GE(recovered, measured.degraded_reads);
  EXPECT_GT(chunk_replies, 0u);
}

}  // namespace
}  // namespace adc
