// Live-cluster cross-validation (ctest label: tier2-net).
//
// Boots a real cluster — every daemon on its own thread with its own
// listening TCP socket on 127.0.0.1, all traffic through the wire protocol
// — replays a scaled Polygraph trace with the TCP load generator, and
// compares the outcome against run_experiment() on the identical trace.
//
// This is the repo's analogue of the paper's simulator-validation claim
// (single-host simulation "returns the same results" as the 8-host
// deployment): the ADC cluster must land within 1% of the simulator's hit
// rate and mean hops (the runs differ only in per-node RNG streams and
// real-network interleaving; the seed-to-seed spread of the simulator
// itself at this scale is ~0.35%), and the deterministic CARP baseline —
// no random forwarding, one request in flight — must match *exactly*,
// transfer for transfer.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "driver/experiment.h"
#include "net/socket.h"
#include "server/daemon.h"
#include "server/loadgen.h"
#include "workload/polygraph.h"
#include "workload/trace.h"

namespace adc {
namespace {

constexpr int kProxies = 5;
constexpr NodeId kOriginId = 5;  // run_experiment layout: proxies [0,5), origin, client
constexpr NodeId kClientId = 6;

class Cluster {
 public:
  explicit Cluster(std::vector<server::DaemonConfig> configs) {
    std::map<NodeId, net::Endpoint> endpoints;
    for (auto& config : configs) {
      config.listen = net::Endpoint{"127.0.0.1", 0};
      auto daemon = std::make_unique<server::NodeDaemon>(config);
      std::string error;
      const std::uint16_t port = daemon->bind(&error);
      EXPECT_NE(port, 0) << error;
      endpoints[config.node_id] = net::Endpoint{"127.0.0.1", port};
      daemons_.push_back(std::move(daemon));
    }
    for (auto& daemon : daemons_) daemon->set_peers(endpoints);
    endpoints_ = std::move(endpoints);
    for (auto& daemon : daemons_) {
      threads_.emplace_back([&daemon]() { daemon->run(); });
    }
  }

  ~Cluster() { shutdown(); }

  /// Stops every daemon and joins its thread; after this, reading daemon
  /// stats from the test thread is race-free.
  void shutdown() {
    for (auto& daemon : daemons_) daemon->stop();
    for (auto& thread : threads_) {
      if (thread.joinable()) thread.join();
    }
  }

  /// Endpoints of the proxy daemons only (what the load generator dials).
  std::map<NodeId, net::Endpoint> proxy_endpoints() const {
    std::map<NodeId, net::Endpoint> out;
    for (const auto& [id, endpoint] : endpoints_) {
      if (id != kOriginId) out[id] = endpoint;
    }
    return out;
  }

  const server::NodeDaemon& daemon(std::size_t i) const { return *daemons_[i]; }

 private:
  std::vector<std::unique_ptr<server::NodeDaemon>> daemons_;
  std::vector<std::thread> threads_;
  std::map<NodeId, net::Endpoint> endpoints_;
};

std::vector<server::DaemonConfig> cluster_configs(server::DaemonRole proxy_role,
                                                  const core::AdcConfig& adc,
                                                  std::size_t carp_capacity) {
  std::vector<server::DaemonConfig> configs;
  for (NodeId id = 0; id <= kOriginId; ++id) {
    server::DaemonConfig config;
    config.node_id = id;
    config.role = id == kOriginId ? server::DaemonRole::kOrigin : proxy_role;
    config.proxy_ids = {0, 1, 2, 3, 4};
    config.origin_id = kOriginId;
    config.adc = adc;
    config.carp_cache_capacity = carp_capacity;
    config.seed = 1;
    configs.push_back(std::move(config));
  }
  return configs;
}

server::LoadGenReport replay(const Cluster& cluster, const std::vector<ObjectId>& objects,
                             int concurrency) {
  server::LoadGenConfig config;
  config.client_id = kClientId;
  config.proxies = cluster.proxy_endpoints();
  config.concurrency = concurrency;
  config.entry = server::EntryChoice::kRoundRobin;
  config.idle_timeout_ms = 30000;
  server::LoadGenerator loadgen(std::move(config));
  std::string error;
  if (!loadgen.connect(&error)) {
    ADD_FAILURE() << error;
    server::LoadGenReport failed;
    failed.timed_out = true;
    return failed;
  }
  return loadgen.run(objects);
}

TEST(Cluster, AdcFiveNodeLoopbackMatchesSimulatorWithinOnePercent) {
  auto poly = workload::PolygraphConfig::scaled(0.01);  // 39,900 requests
  poly.seed = 42;
  const workload::Trace trace = workload::generate_polygraph_trace(poly);

  core::AdcConfig adc;
  adc.single_table_size = 2000;
  adc.multiple_table_size = 2000;
  adc.caching_table_size = 1000;

  driver::ExperimentConfig sim_config;
  sim_config.scheme = driver::Scheme::kAdc;
  sim_config.proxies = kProxies;
  sim_config.adc = adc;
  sim_config.entry_policy = proxy::EntryPolicy::kRoundRobin;
  sim_config.concurrency = 4;
  sim_config.seed = 1;
  const driver::ExperimentResult expected = run_experiment(sim_config, trace);
  ASSERT_EQ(expected.summary.completed, trace.size());

  const Cluster cluster(cluster_configs(server::DaemonRole::kAdcProxy, adc, 1000));
  const server::LoadGenReport report = replay(cluster, trace.requests(), 4);

  ASSERT_FALSE(report.timed_out);
  ASSERT_EQ(report.completed, trace.size());

  const double sim_hit_rate = expected.summary.hit_rate();
  const double sim_mean_hops = expected.summary.avg_hops();
  EXPECT_NEAR(report.hit_rate(), sim_hit_rate, 0.01 * sim_hit_rate)
      << "cluster=" << report.hit_rate() << " sim=" << sim_hit_rate;
  EXPECT_NEAR(report.mean_hops(), sim_mean_hops, 0.01 * sim_mean_hops)
      << "cluster=" << report.mean_hops() << " sim=" << sim_mean_hops;

  // The loadgen's headline numbers must be present and coherent.
  EXPECT_GT(report.throughput(), 0.0);
  EXPECT_GT(report.latency_p50_us, 0.0);
  EXPECT_LE(report.latency_p50_us, report.latency_p95_us);
  EXPECT_LE(report.latency_p95_us, report.latency_p99_us);
}

TEST(Cluster, CarpClusterMatchesSimulatorExactly) {
  // CARP has no stochastic choice and the closed loop keeps one request in
  // flight, so the live cluster's message sequence is identical to the
  // simulator's: hits and hop totals must agree exactly, not statistically.
  auto poly = workload::PolygraphConfig::scaled(0.01);
  poly.seed = 42;
  const workload::Trace full = workload::generate_polygraph_trace(poly);
  const workload::Trace trace = full.slice(8000, 20000);  // spans fill into phase 2

  core::AdcConfig adc;  // only caching_table_size matters for CARP capacity
  adc.caching_table_size = 1000;

  driver::ExperimentConfig sim_config;
  sim_config.scheme = driver::Scheme::kCarp;
  sim_config.proxies = kProxies;
  sim_config.adc = adc;
  sim_config.entry_policy = proxy::EntryPolicy::kRoundRobin;
  sim_config.concurrency = 1;
  sim_config.seed = 1;
  const driver::ExperimentResult expected = run_experiment(sim_config, trace);
  ASSERT_EQ(expected.summary.completed, trace.size());

  const Cluster cluster(cluster_configs(server::DaemonRole::kCarpProxy, adc, 1000));
  const server::LoadGenReport report = replay(cluster, trace.requests(), 1);

  ASSERT_FALSE(report.timed_out);
  EXPECT_EQ(report.completed, expected.summary.completed);
  EXPECT_EQ(report.hits, expected.summary.hits);
  EXPECT_EQ(report.total_hops, expected.summary.total_hops);
  EXPECT_GT(report.hits, 0u);
}

TEST(Cluster, DaemonStatsTextReportsTraffic) {
  const workload::Trace trace =
      workload::generate_polygraph_trace(workload::PolygraphConfig::scaled(0.001));

  core::AdcConfig adc;
  adc.single_table_size = 500;
  adc.multiple_table_size = 500;
  adc.caching_table_size = 250;

  Cluster cluster(cluster_configs(server::DaemonRole::kAdcProxy, adc, 250));
  const server::LoadGenReport report = replay(cluster, trace.requests(), 2);
  ASSERT_FALSE(report.timed_out);
  ASSERT_EQ(report.completed, trace.size());
  cluster.shutdown();

  std::uint64_t total_deliveries = 0;
  for (std::size_t i = 0; i < kProxies; ++i) {
    const std::string text = cluster.daemon(i).stats_text();
    EXPECT_NE(text.find("requests_received="), std::string::npos);
    total_deliveries += cluster.daemon(i).stats().deliveries;
  }
  // Every request passed through at least one proxy delivery.
  EXPECT_GE(total_deliveries, trace.size());
  EXPECT_NE(cluster.daemon(kOriginId).stats_text().find("requests_served="),
            std::string::npos);
}

}  // namespace
}  // namespace adc
