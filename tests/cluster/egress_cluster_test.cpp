// Live egress-pacing conformance (ctest label: tier2-net).
//
// The daemon's token bucket is the live mirror of the simulator's link
// model: --egress-bytes-per-sec must be an *observable* ceiling, not a
// config comment.  A single-proxy CARP cluster with a capped proxy egress
// is saturated by a closed-loop payload replay; the loadgen's measured
// bytes/s — accounted payload bytes over wall time, the same ledger the
// bucket charges — must land within 10% of the configured rate.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.h"
#include "server/daemon.h"
#include "server/loadgen.h"
#include "workload/polygraph.h"
#include "workload/trace.h"

namespace adc {
namespace {

constexpr NodeId kProxyId = 0;
constexpr NodeId kOriginId = 1;
constexpr NodeId kClientId = 6;
constexpr std::uint64_t kEgressBytesPerSec = 4'000'000;

TEST(EgressCluster, MeasuredThroughputTracksConfiguredCeiling) {
  // ~1500 requests of heavy-tailed payload: enough accounted bytes that
  // the paced phase dominates wall time, small enough to finish fast.
  auto poly = workload::PolygraphConfig::scaled(0.002);
  poly.seed = 42;
  std::vector<ObjectId> objects = workload::generate_polygraph_trace(poly).requests();
  if (objects.size() > 1500) objects.resize(1500);

  store::PayloadConfig payload;
  payload.enabled = true;
  payload.seed = 97;

  std::vector<server::DaemonConfig> configs;
  for (const NodeId id : {kProxyId, kOriginId}) {
    server::DaemonConfig config;
    config.node_id = id;
    config.role =
        id == kOriginId ? server::DaemonRole::kOrigin : server::DaemonRole::kCarpProxy;
    config.proxy_ids = {kProxyId};
    config.origin_id = kOriginId;
    config.carp_cache_capacity = 1000;
    config.seed = 1;
    config.payload = payload;
    // Only the proxy is paced: every client-bound reply crosses its
    // egress, so its bucket is the ceiling the loadgen observes.
    if (id == kProxyId) config.egress_bytes_per_sec = kEgressBytesPerSec;
    configs.push_back(std::move(config));
  }

  std::vector<std::unique_ptr<server::NodeDaemon>> daemons;
  std::map<NodeId, net::Endpoint> endpoints;
  for (auto& config : configs) {
    config.listen = net::Endpoint{"127.0.0.1", 0};
    auto daemon = std::make_unique<server::NodeDaemon>(config);
    std::string error;
    const std::uint16_t port = daemon->bind(&error);
    ASSERT_NE(port, 0) << error;
    endpoints[config.node_id] = net::Endpoint{"127.0.0.1", port};
    daemons.push_back(std::move(daemon));
  }
  std::vector<std::thread> threads;
  for (auto& daemon : daemons) {
    daemon->set_peers(endpoints);
    threads.emplace_back([d = daemon.get()]() { d->run(); });
  }

  server::LoadGenConfig lg;
  lg.client_id = kClientId;
  lg.proxies = {{kProxyId, endpoints[kProxyId]}};
  // Deep closed loop: the proxy's egress queue stays backlogged for the
  // whole run, so the bucket — not the client — is the bottleneck.
  lg.concurrency = 8;
  lg.idle_timeout_ms = 60000;
  server::LoadGenerator loadgen(std::move(lg));
  std::string error;
  ASSERT_TRUE(loadgen.connect(&error)) << error;
  const server::LoadGenReport report = loadgen.run(objects);

  for (auto& daemon : daemons) daemon->stop();
  for (auto& thread : threads) thread.join();

  ASSERT_FALSE(report.timed_out);
  EXPECT_EQ(report.completed, objects.size());
  ASSERT_GT(report.bytes_completed, kEgressBytesPerSec)  // > 1s of paced flow
      << "trace too small to exercise the pacer";

  const double measured = report.bytes_per_second();
  EXPECT_GE(measured, 0.90 * static_cast<double>(kEgressBytesPerSec))
      << "pacer throttled below the configured rate";
  EXPECT_LE(measured, 1.10 * static_cast<double>(kEgressBytesPerSec))
      << "pacer failed to cap egress";

  // The bucket actually engaged: frames waited in the queue, and the
  // stats surface it (daemons are stopped, so reading them is safe).
  EXPECT_GT(daemons[0]->stats().egress_paced_frames, 0u);
  EXPECT_GT(daemons[0]->stats().egress_paced_bytes, 0u);
  EXPECT_EQ(daemons[1]->stats().egress_paced_frames, 0u);  // origin unpaced
}

}  // namespace
}  // namespace adc
