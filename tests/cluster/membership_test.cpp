// Live-cluster membership tests (ctest label: tier2-net).
//
// churn_test.cpp proves the *reactive* resilience story: traffic hits a
// dead peer, errors surface, backoff and degradation absorb them.  These
// tests prove the *proactive* one — the SWIM detector notices a killed
// daemon with NO traffic in flight, the survivors bump their membership
// epoch, and the consequences land per scheme: a CARP member's URL share
// is reassigned (owner map rebuilt, reshuffle fraction measured, and not
// one request routed to the dead member afterwards), and an ADC member's
// mapping entries are purged so lookups stop chasing a silent ghost.
#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/adc_config.h"
#include "membership/member_agent.h"
#include "net/socket.h"
#include "proxy/hashing_proxy.h"
#include "server/daemon.h"
#include "server/loadgen.h"
#include "workload/polygraph.h"
#include "workload/trace.h"

namespace adc {
namespace {

constexpr int kProxies = 3;
constexpr NodeId kOriginId = 3;
constexpr NodeId kClientId = 4;
constexpr NodeId kVictim = 1;

/// Live-scale-but-fast SWIM timings: 100ms pings, 300ms suspicion.  A
/// death is confirmed in well under a second of wall clock; the daemon
/// poll loop runs at 100ms when the detector is on, which is exactly the
/// ping cadence.
membership::MembershipConfig fast_membership(std::uint64_t seed) {
  membership::MembershipConfig config;
  config.swim.enabled = true;
  config.swim.ping_interval = 100'000;
  config.swim.ack_timeout = 40'000;
  config.swim.indirect_timeout = 40'000;
  config.swim.suspect_timeout = 300'000;
  config.swim.dead_probe_interval = 600'000;
  config.swim.seed = seed;
  config.repair.interval = 200'000;
  return config;
}

/// Minimal killable cluster — like churn_test's harness but exposing the
/// daemon objects so tests can poll membership_epoch() (atomic, designed
/// for exactly this) and read detector/agent stats after shutdown.
class MemberCluster {
 public:
  explicit MemberCluster(std::vector<server::DaemonConfig> configs)
      : configs_(std::move(configs)) {
    daemons_.resize(configs_.size());
    threads_.resize(configs_.size());
    for (std::size_t i = 0; i < configs_.size(); ++i) {
      configs_[i].listen = net::Endpoint{"127.0.0.1", 0};
      daemons_[i] = std::make_unique<server::NodeDaemon>(configs_[i]);
      std::string error;
      const std::uint16_t port = daemons_[i]->bind(&error);
      EXPECT_NE(port, 0) << error;
      configs_[i].listen.port = port;
      endpoints_[configs_[i].node_id] = net::Endpoint{"127.0.0.1", port};
    }
    for (std::size_t i = 0; i < daemons_.size(); ++i) {
      daemons_[i]->set_peers(endpoints_);
      threads_[i] = std::thread([daemon = daemons_[i].get()]() { daemon->run(); });
    }
  }

  ~MemberCluster() { shutdown(); }

  void kill(std::size_t i) {
    daemons_[i]->stop();
    threads_[i].join();
    daemons_[i].reset();
  }

  void shutdown() {
    for (std::size_t i = 0; i < daemons_.size(); ++i) {
      if (daemons_[i] == nullptr) continue;
      daemons_[i]->stop();
      if (threads_[i].joinable()) threads_[i].join();
    }
  }

  server::NodeDaemon& daemon(std::size_t i) { return *daemons_[i]; }

  /// Blocks until every surviving proxy daemon reports an epoch >= `want`,
  /// or `deadline` wall time passes.  Pure polling on an atomic — no
  /// traffic is generated, which is the point of the silent-peer tests.
  bool await_epoch(std::uint64_t want, std::chrono::seconds deadline) {
    const auto until = std::chrono::steady_clock::now() + deadline;
    while (std::chrono::steady_clock::now() < until) {
      bool all = true;
      for (const auto& daemon : daemons_) {
        if (daemon == nullptr || daemon->detector() == nullptr) continue;
        if (daemon->membership_epoch() < want) all = false;
      }
      if (all) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return false;
  }

  std::map<NodeId, net::Endpoint> proxy_endpoints(bool include_victim) const {
    std::map<NodeId, net::Endpoint> out;
    for (const auto& [id, endpoint] : endpoints_) {
      if (id == kOriginId) continue;
      if (!include_victim && id == kVictim) continue;
      out[id] = endpoint;
    }
    return out;
  }

 private:
  std::vector<server::DaemonConfig> configs_;
  std::vector<std::unique_ptr<server::NodeDaemon>> daemons_;
  std::vector<std::thread> threads_;
  std::map<NodeId, net::Endpoint> endpoints_;
};

std::vector<server::DaemonConfig> member_configs(server::DaemonRole proxy_role) {
  std::vector<server::DaemonConfig> configs;
  for (NodeId id = 0; id <= kOriginId; ++id) {
    server::DaemonConfig config;
    config.node_id = id;
    config.role = id == kOriginId ? server::DaemonRole::kOrigin : proxy_role;
    config.proxy_ids = {0, 1, 2};
    config.origin_id = kOriginId;
    config.adc.single_table_size = 1000;
    config.adc.multiple_table_size = 1000;
    config.adc.caching_table_size = 500;
    config.carp_cache_capacity = 500;
    config.seed = 1;
    config.membership = fast_membership(/*seed=*/7);
    configs.push_back(std::move(config));
  }
  return configs;
}

server::LoadGenConfig loadgen_config(std::map<NodeId, net::Endpoint> proxies) {
  server::LoadGenConfig lg;
  lg.client_id = kClientId;
  lg.proxies = std::move(proxies);
  lg.concurrency = 4;
  lg.entry = server::EntryChoice::kRoundRobin;
  lg.idle_timeout_ms = 30000;
  lg.request_timeout_ms = 2000;
  lg.health.max_backoff_us = 250'000;
  return lg;
}

std::vector<ObjectId> test_objects() {
  auto poly = workload::PolygraphConfig::scaled(0.002);  // ~8k requests
  poly.seed = 42;
  return workload::generate_polygraph_trace(poly).requests();
}

TEST(Membership, CarpUrlShareIsReassignedAfterSilentMemberDeath) {
  const std::vector<ObjectId> objects = test_objects();
  const std::size_t half = objects.size() / 2;

  MemberCluster cluster(member_configs(server::DaemonRole::kCarpProxy));

  // Warm phase against all three members, so the victim genuinely owned a
  // share of the URL space.
  {
    server::LoadGenerator warmup(loadgen_config(cluster.proxy_endpoints(true)));
    std::string error;
    ASSERT_TRUE(warmup.connect(&error)) << error;
    const auto warm = warmup.run({objects.begin(), objects.begin() + half});
    ASSERT_FALSE(warm.timed_out);
    EXPECT_EQ(warm.completed + warm.failed, static_cast<std::uint64_t>(half));
  }

  // Kill the victim and let SWIM confirm the death with zero traffic in
  // flight — the probes themselves are the only evidence.
  cluster.kill(kVictim);
  ASSERT_TRUE(cluster.await_epoch(1, std::chrono::seconds(10)))
      << "survivors never confirmed the silent death";

  // Snapshot the survivors' degraded-fetch counters: a request routed to
  // the dead member after the epoch bump would be rerouted to the origin
  // and counted here, so a zero delta proves no request targeted it.
  std::uint64_t degraded_before = 0;
  for (const std::size_t i : {0u, 2u}) {
    degraded_before += cluster.daemon(i).fault_stats().degraded_fetches;
  }

  server::LoadGenerator loadgen(loadgen_config(cluster.proxy_endpoints(false)));
  std::string error;
  ASSERT_TRUE(loadgen.connect(&error)) << error;
  const auto measured = loadgen.run({objects.begin() + half, objects.end()});
  ASSERT_FALSE(measured.timed_out);
  EXPECT_EQ(measured.completed + measured.failed,
            static_cast<std::uint64_t>(objects.size() - half));
  EXPECT_GT(measured.hit_rate(), 0.0);

  std::uint64_t degraded_after = 0;
  for (const std::size_t i : {0u, 2u}) {
    degraded_after += cluster.daemon(i).fault_stats().degraded_fetches;
  }
  EXPECT_EQ(degraded_after, degraded_before)
      << "a request was still routed toward the dead member after the epoch bump";

  cluster.shutdown();

  // Both survivors rebuilt their owner map and measured the reshuffle:
  // with 1 of 3 members gone, roughly a third of the sampled URL space
  // changed owner.
  for (const std::size_t i : {0u, 2u}) {
    const auto& proxy = static_cast<const proxy::HashingProxy&>(cluster.daemon(i).hosted());
    EXPECT_GE(proxy.stats().membership_epoch, 1u) << "daemon " << i;
    EXPECT_GE(proxy.stats().owner_rebuilds, 1u) << "daemon " << i;
    EXPECT_GT(proxy.stats().max_reshuffle_fraction, 0.1) << "daemon " << i;
    EXPECT_LT(proxy.stats().max_reshuffle_fraction, 0.9) << "daemon " << i;
    ASSERT_NE(cluster.daemon(i).detector(), nullptr);
    EXPECT_EQ(cluster.daemon(i).detector()->state(kVictim), membership::PeerState::kDead);
    EXPECT_GE(cluster.daemon(i).detector()->stats().deaths, 1u);
  }
}

TEST(Membership, AdcSilentMemberDeathPurgesItsMappingEntries) {
  const std::vector<ObjectId> objects = test_objects();
  const std::size_t half = objects.size() / 2;

  MemberCluster cluster(member_configs(server::DaemonRole::kAdcProxy));

  // Warm phase across all members: the survivors' mapping tables learn
  // plenty of locations naming the victim.
  {
    server::LoadGenerator warmup(loadgen_config(cluster.proxy_endpoints(true)));
    std::string error;
    ASSERT_TRUE(warmup.connect(&error)) << error;
    const auto warm = warmup.run({objects.begin(), objects.begin() + half});
    ASSERT_FALSE(warm.timed_out);
    EXPECT_EQ(warm.completed + warm.failed, static_cast<std::uint64_t>(half));
  }

  cluster.kill(kVictim);
  ASSERT_TRUE(cluster.await_epoch(1, std::chrono::seconds(10)))
      << "survivors never confirmed the silent death";

  // The detector's death callback purged the entries naming the victim —
  // without any request having tripped over the dead peer first.
  std::uint64_t invalidated = 0;
  for (const std::size_t i : {0u, 2u}) {
    invalidated += cluster.daemon(i).fault_stats().entries_invalidated;
  }
  EXPECT_GT(invalidated, 0u);

  // And the cluster still answers: post-death traffic against the
  // survivors completes with a real hit rate.
  server::LoadGenerator loadgen(loadgen_config(cluster.proxy_endpoints(false)));
  std::string error;
  ASSERT_TRUE(loadgen.connect(&error)) << error;
  const auto measured = loadgen.run({objects.begin() + half, objects.end()});
  ASSERT_FALSE(measured.timed_out);
  EXPECT_EQ(measured.completed + measured.failed,
            static_cast<std::uint64_t>(objects.size() - half));
  EXPECT_GT(measured.hit_rate(), 0.0);

  cluster.shutdown();
  for (const std::size_t i : {0u, 2u}) {
    ASSERT_NE(cluster.daemon(i).detector(), nullptr);
    EXPECT_EQ(cluster.daemon(i).detector()->state(kVictim), membership::PeerState::kDead);
  }
}

}  // namespace
}  // namespace adc
