// Live-cluster churn and chaos tests (ctest label: tier2-net).
//
// Where cluster_test.cpp proves the healthy cluster matches the
// simulator, these tests break the cluster on purpose: a daemon dies
// mid-replay (and later comes back on the same port), and in the second
// test every daemon also drops 5% of its outbound messages.  The claims
// under test are the resilience layer's: the load generator never hangs
// (dead entries go through backoff, lost requests expire via the
// per-request deadline), the daemons reroute unroutable forwards to the
// origin and invalidate table entries pointing at the dead peer, and once
// the peer returns the cluster reconverges to the healthy hit rate.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "driver/experiment.h"
#include "fault/fault_plan.h"
#include "net/socket.h"
#include "server/daemon.h"
#include "server/loadgen.h"
#include "sim/metrics.h"
#include "workload/polygraph.h"
#include "workload/trace.h"

namespace adc {
namespace {

constexpr int kProxies = 5;
constexpr NodeId kOriginId = 5;
constexpr NodeId kClientId = 6;
constexpr NodeId kVictim = 2;  // the proxy that crashes mid-run

/// A loopback cluster whose members can be killed and restarted on their
/// original port mid-test.  Counters of killed instances are snapshotted
/// before destruction so the end-of-test aggregate sees the whole story.
class ChurnCluster {
 public:
  explicit ChurnCluster(std::vector<server::DaemonConfig> configs)
      : configs_(std::move(configs)) {
    daemons_.resize(configs_.size());
    threads_.resize(configs_.size());
    for (std::size_t i = 0; i < configs_.size(); ++i) {
      configs_[i].listen = net::Endpoint{"127.0.0.1", 0};
      daemons_[i] = std::make_unique<server::NodeDaemon>(configs_[i]);
      std::string error;
      const std::uint16_t port = daemons_[i]->bind(&error);
      EXPECT_NE(port, 0) << error;
      configs_[i].listen.port = port;  // restarts rebind the same port
      endpoints_[configs_[i].node_id] = net::Endpoint{"127.0.0.1", port};
    }
    for (std::size_t i = 0; i < daemons_.size(); ++i) {
      daemons_[i]->set_peers(endpoints_);
      threads_[i] = std::thread([daemon = daemons_[i].get()]() { daemon->run(); });
    }
  }

  ~ChurnCluster() { shutdown(); }

  /// Stops daemon i, joins its thread, banks its counters, and closes its
  /// listener so a restart can take the port back.
  void kill(std::size_t i) {
    daemons_[i]->stop();
    threads_[i].join();
    bank_counters(*daemons_[i]);
    daemons_[i].reset();
  }

  void restart(std::size_t i) {
    daemons_[i] = std::make_unique<server::NodeDaemon>(configs_[i]);
    std::string error;
    const std::uint16_t port = daemons_[i]->bind(&error);
    ASSERT_EQ(port, configs_[i].listen.port) << error;
    daemons_[i]->set_peers(endpoints_);
    threads_[i] = std::thread([daemon = daemons_[i].get()]() { daemon->run(); });
  }

  void shutdown() {
    for (std::size_t i = 0; i < daemons_.size(); ++i) {
      if (daemons_[i] == nullptr) continue;
      daemons_[i]->stop();
      if (threads_[i].joinable()) threads_[i].join();
    }
  }

  /// Whole-cluster fault counters: killed instances plus the survivors.
  /// Only race-free after shutdown().
  sim::FaultCounters total_faults() const {
    sim::FaultCounters total = banked_;
    for (const auto& daemon : daemons_) {
      if (daemon == nullptr) continue;
      const sim::FaultCounters f = daemon->fault_stats();
      total.drops_random += f.drops_random;
      total.duplicates += f.duplicates;
      total.retries += f.retries;
      total.reconnects += f.reconnects;
      total.degraded_fetches += f.degraded_fetches;
      total.entries_invalidated += f.entries_invalidated;
    }
    return total;
  }

  std::map<NodeId, net::Endpoint> proxy_endpoints() const {
    std::map<NodeId, net::Endpoint> out;
    for (const auto& [id, endpoint] : endpoints_) {
      if (id != kOriginId) out[id] = endpoint;
    }
    return out;
  }

 private:
  void bank_counters(const server::NodeDaemon& daemon) {
    const sim::FaultCounters f = daemon.fault_stats();
    banked_.drops_random += f.drops_random;
    banked_.duplicates += f.duplicates;
    banked_.retries += f.retries;
    banked_.reconnects += f.reconnects;
    banked_.degraded_fetches += f.degraded_fetches;
    banked_.entries_invalidated += f.entries_invalidated;
  }

  std::vector<server::DaemonConfig> configs_;
  std::vector<std::unique_ptr<server::NodeDaemon>> daemons_;
  std::vector<std::thread> threads_;
  std::map<NodeId, net::Endpoint> endpoints_;
  sim::FaultCounters banked_;
};

std::vector<server::DaemonConfig> adc_configs(const core::AdcConfig& adc,
                                              const fault::FaultPlan& plan) {
  std::vector<server::DaemonConfig> configs;
  for (NodeId id = 0; id <= kOriginId; ++id) {
    server::DaemonConfig config;
    config.node_id = id;
    config.role = id == kOriginId ? server::DaemonRole::kOrigin : server::DaemonRole::kAdcProxy;
    config.proxy_ids = {0, 1, 2, 3, 4};
    config.origin_id = kOriginId;
    config.adc = adc;
    config.seed = 1;
    config.fault_plan = plan;
    config.fault_plan.seed = plan.seed + static_cast<std::uint64_t>(id);
    configs.push_back(std::move(config));
  }
  return configs;
}

std::vector<ObjectId> slice(const std::vector<ObjectId>& objects, std::size_t from,
                            std::size_t to) {
  return {objects.begin() + static_cast<std::ptrdiff_t>(from),
          objects.begin() + static_cast<std::ptrdiff_t>(to)};
}

double window_mean(const std::vector<sim::SeriesPoint>& series, std::uint64_t begin,
                   std::uint64_t end) {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& point : series) {
    if (point.requests > begin && point.requests <= end) {
      sum += point.hit_rate;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

TEST(Churn, AdcClusterReconvergesAfterDaemonRestart) {
  auto poly = workload::PolygraphConfig::scaled(0.01);  // 39,900 requests
  poly.seed = 42;
  const workload::Trace trace = workload::generate_polygraph_trace(poly);
  const std::vector<ObjectId> objects = trace.requests();

  core::AdcConfig adc;
  adc.single_table_size = 2000;
  adc.multiple_table_size = 2000;
  adc.caching_table_size = 1000;

  // Healthy-simulator reference for the measurement window.
  driver::ExperimentConfig sim_config;
  sim_config.scheme = driver::Scheme::kAdc;
  sim_config.proxies = kProxies;
  sim_config.adc = adc;
  sim_config.entry_policy = proxy::EntryPolicy::kRoundRobin;
  sim_config.concurrency = 4;
  sim_config.seed = 1;
  sim_config.ma_window = 2000;
  sim_config.sample_every = 250;
  const driver::ExperimentResult expected = run_experiment(sim_config, trace);
  ASSERT_EQ(expected.summary.completed, trace.size());

  ChurnCluster cluster(adc_configs(adc, fault::FaultPlan{}));

  server::LoadGenConfig lg;
  lg.client_id = kClientId;
  lg.proxies = cluster.proxy_endpoints();
  lg.concurrency = 4;
  lg.entry = server::EntryChoice::kRoundRobin;
  lg.idle_timeout_ms = 30000;
  // Reclaims the requests that were in flight on the victim's connections
  // at the moment it died; everything else completes normally.
  lg.request_timeout_ms = 2000;
  // Loopback replays run at ~10k req/s, so the post-restart phases span
  // only a couple of seconds of wall time; cap the redial backoff well
  // below that or the reconnect may not be attempted before the run ends.
  lg.health.max_backoff_us = 250'000;
  server::LoadGenerator loadgen(std::move(lg));
  std::string error;
  ASSERT_TRUE(loadgen.connect(&error)) << error;

  const std::size_t n = objects.size();
  const std::size_t down_at = n * 35 / 100;
  const std::size_t back_at = n * 45 / 100;
  const std::size_t measure_at = n * 60 / 100;

  const auto warm = loadgen.run(slice(objects, 0, down_at));
  ASSERT_FALSE(warm.timed_out);
  cluster.kill(kVictim);
  const auto degraded = loadgen.run(slice(objects, down_at, back_at));
  ASSERT_FALSE(degraded.timed_out);
  cluster.restart(kVictim);
  const auto recovery = loadgen.run(slice(objects, back_at, measure_at));
  ASSERT_FALSE(recovery.timed_out);
  const auto measured = loadgen.run(slice(objects, measure_at, n));
  ASSERT_FALSE(measured.timed_out);
  cluster.shutdown();

  // Every phase drained: no request left unresolved, no hang.
  EXPECT_EQ(warm.completed + warm.failed, static_cast<std::uint64_t>(down_at));
  EXPECT_EQ(degraded.completed + degraded.failed,
            static_cast<std::uint64_t>(back_at - down_at));
  EXPECT_EQ(measured.completed + measured.failed,
            static_cast<std::uint64_t>(n - measure_at));

  // The load generator redialed the victim once it was back.
  EXPECT_GE(recovery.errors.reconnects + measured.errors.reconnects, 1u);

  // The surviving proxies noticed the death: forwards aimed at the victim
  // fell back to the origin, and table entries naming it were invalidated.
  const sim::FaultCounters faults = cluster.total_faults();
  EXPECT_GT(faults.degraded_fetches, 0u);
  EXPECT_GT(faults.entries_invalidated, 0u);

  // After reconnection and relearning, the cluster is back at the healthy
  // simulator's hit rate: within one percentage point over the final 40%
  // of the trace (the window-mean of the sim's moving average carries a
  // little estimator noise of its own).
  const double sim_ref = window_mean(expected.series, measure_at, n);
  EXPECT_NEAR(measured.hit_rate(), sim_ref, 0.01)
      << "cluster=" << measured.hit_rate() << " sim=" << sim_ref;
}

TEST(Churn, LossyClusterWithMidRunCrashCompletesAndRecovers) {
  auto poly = workload::PolygraphConfig::scaled(0.004);  // ~16k requests
  poly.seed = 42;
  const workload::Trace trace = workload::generate_polygraph_trace(poly);
  const std::vector<ObjectId> objects = trace.requests();

  core::AdcConfig adc;
  adc.single_table_size = 1000;
  adc.multiple_table_size = 1000;
  adc.caching_table_size = 500;

  fault::FaultPlan plan;
  plan.drop_prob = 0.05;  // every daemon loses 5% of its outbound messages
  ChurnCluster cluster(adc_configs(adc, plan));

  server::LoadGenConfig lg;
  lg.client_id = kClientId;
  lg.proxies = cluster.proxy_endpoints();
  lg.concurrency = 16;
  lg.entry = server::EntryChoice::kRoundRobin;
  lg.idle_timeout_ms = 30000;
  // Loopback p99 is well under 10ms, so 150ms cleanly separates "lost to
  // chaos" from "slow" while keeping ~2k expected expiries affordable.
  lg.request_timeout_ms = 150;
  lg.health.max_backoff_us = 250'000;  // see the restart test above
  server::LoadGenerator loadgen(std::move(lg));
  std::string error;
  ASSERT_TRUE(loadgen.connect(&error)) << error;

  const std::size_t n = objects.size();
  const std::size_t down_at = n * 40 / 100;
  const std::size_t back_at = n * 50 / 100;
  const std::size_t measure_at = n * 70 / 100;

  const auto warm = loadgen.run(slice(objects, 0, down_at));
  ASSERT_FALSE(warm.timed_out);
  cluster.kill(kVictim);
  const auto degraded = loadgen.run(slice(objects, down_at, back_at));
  ASSERT_FALSE(degraded.timed_out);
  cluster.restart(kVictim);
  const auto recovery = loadgen.run(slice(objects, back_at, measure_at));
  ASSERT_FALSE(recovery.timed_out);
  const auto measured = loadgen.run(slice(objects, measure_at, n));
  ASSERT_FALSE(measured.timed_out);
  cluster.shutdown();

  // Zero hangs: every chunk resolved every request, lost ones as failures.
  EXPECT_EQ(warm.completed + warm.failed, static_cast<std::uint64_t>(down_at));
  EXPECT_EQ(degraded.completed + degraded.failed,
            static_cast<std::uint64_t>(back_at - down_at));
  EXPECT_EQ(recovery.completed + recovery.failed,
            static_cast<std::uint64_t>(measure_at - back_at));
  EXPECT_EQ(measured.completed + measured.failed,
            static_cast<std::uint64_t>(n - measure_at));
  EXPECT_GT(warm.failed, 0u);  // 5% loss really was injected

  // The resilience counters all moved: the cluster retried the dead peer,
  // reconnected to it, degraded forwards to the origin meanwhile, and
  // invalidated the table entries that pointed at it.
  const sim::FaultCounters faults = cluster.total_faults();
  EXPECT_GT(faults.drops_random, 0u);
  EXPECT_GT(faults.retries, 0u);
  EXPECT_GT(faults.reconnects, 0u);
  EXPECT_GT(faults.degraded_fetches, 0u);
  EXPECT_GT(faults.entries_invalidated, 0u);
  EXPECT_GE(recovery.errors.reconnects + measured.errors.reconnects, 1u);
  EXPECT_GT(warm.errors.total_conn_failures() + degraded.errors.total_conn_failures() +
                recovery.errors.total_conn_failures() + measured.errors.total_conn_failures() +
                warm.errors.orderly_closes + degraded.errors.orderly_closes,
            0u);

  // Recovered: the post-restart window still serves a healthy share of
  // hits (completed-only hit rate; the absolute bar is intentionally loose
  // because 5% loss skews which requests complete).
  EXPECT_GT(measured.hit_rate(), 0.25) << measured.text();
}

}  // namespace
}  // namespace adc
