// Live-cluster proactive re-stripe repair (ctest label: tier2-net).
//
// The two-death drill on real sockets: an eight-proxy CARP cluster warms
// up, loses one daemon, SWIM confirms the death and the survivors re-home
// the dead member's chunks onto replacement owners in byte-budgeted
// rounds (every offer materialized by genuine RDP reconstruction and
// checksum-verified on receipt).  Then a SECOND daemon dies.  Because the
// stripes were healed back to full k + 2 width in between, the survivors
// still hold at least k chunks of everything: the dead members' objects
// keep coming back as degraded reads, not origin refetches — the window
// that would have been fatal without repair stayed closed.
#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "hash/carp.h"
#include "net/socket.h"
#include "proxy/hashing_proxy.h"
#include "server/daemon.h"
#include "server/loadgen.h"
#include "workload/polygraph.h"
#include "workload/trace.h"

namespace adc {
namespace {

constexpr int kProxies = 8;  // k = 3 stripes (width 5) leave 3 spare homes
constexpr NodeId kOriginId = 8;
constexpr NodeId kClientId = 9;
constexpr NodeId kVictimA = 2;
constexpr NodeId kVictimB = 5;
constexpr std::uint64_t kRepairBudget = 96 * 1024;  // > the largest chunk

membership::MembershipConfig fast_membership(std::uint64_t seed) {
  membership::MembershipConfig config;
  config.swim.enabled = true;
  config.swim.ping_interval = 100'000;
  config.swim.ack_timeout = 40'000;
  config.swim.indirect_timeout = 40'000;
  config.swim.suspect_timeout = 300'000;
  config.swim.dead_probe_interval = 600'000;
  config.swim.seed = seed;
  config.repair.interval = 200'000;
  return config;
}

class RepairCluster {
 public:
  explicit RepairCluster(std::vector<server::DaemonConfig> configs)
      : configs_(std::move(configs)) {
    daemons_.resize(configs_.size());
    threads_.resize(configs_.size());
    for (std::size_t i = 0; i < configs_.size(); ++i) {
      configs_[i].listen = net::Endpoint{"127.0.0.1", 0};
      daemons_[i] = std::make_unique<server::NodeDaemon>(configs_[i]);
      std::string error;
      const std::uint16_t port = daemons_[i]->bind(&error);
      EXPECT_NE(port, 0) << error;
      configs_[i].listen.port = port;
      endpoints_[configs_[i].node_id] = net::Endpoint{"127.0.0.1", port};
    }
    for (std::size_t i = 0; i < daemons_.size(); ++i) {
      daemons_[i]->set_peers(endpoints_);
      threads_[i] = std::thread([daemon = daemons_[i].get()]() { daemon->run(); });
    }
  }

  ~RepairCluster() { shutdown(); }

  void kill(std::size_t i) {
    daemons_[i]->stop();
    threads_[i].join();
    daemons_[i].reset();
  }

  void shutdown() {
    for (std::size_t i = 0; i < daemons_.size(); ++i) {
      if (daemons_[i] == nullptr) continue;
      daemons_[i]->stop();
      if (threads_[i].joinable()) threads_[i].join();
    }
  }

  server::NodeDaemon& daemon(std::size_t i) { return *daemons_[i]; }
  bool alive(std::size_t i) const { return daemons_[i] != nullptr; }

  bool await_epoch(std::uint64_t want, std::chrono::seconds deadline) {
    const auto until = std::chrono::steady_clock::now() + deadline;
    while (std::chrono::steady_clock::now() < until) {
      bool all = true;
      for (const auto& daemon : daemons_) {
        if (daemon == nullptr || daemon->detector() == nullptr) continue;
        if (daemon->membership_epoch() < want) all = false;
      }
      if (all) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return false;
  }

  /// Waits until no surviving proxy has re-stripe work queued.  The
  /// backlog is the loop's atomic snapshot, so this never races the
  /// daemon threads.
  bool await_repair_drained(std::chrono::seconds deadline) {
    // Give the death a couple of anti-entropy intervals to turn into
    // queued work before trusting an all-zero backlog.
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    const auto until = std::chrono::steady_clock::now() + deadline;
    while (std::chrono::steady_clock::now() < until) {
      bool drained = true;
      for (const auto& daemon : daemons_) {
        if (daemon == nullptr) continue;
        if (daemon->restripe_backlog() != 0) drained = false;
      }
      if (drained) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    return false;
  }

  std::map<NodeId, net::Endpoint> proxy_endpoints(
      const std::set<NodeId>& exclude) const {
    std::map<NodeId, net::Endpoint> out;
    for (const auto& [id, endpoint] : endpoints_) {
      if (id == kOriginId || exclude.count(id) != 0) continue;
      out[id] = endpoint;
    }
    return out;
  }

 private:
  std::vector<server::DaemonConfig> configs_;
  std::vector<std::unique_ptr<server::NodeDaemon>> daemons_;
  std::vector<std::thread> threads_;
  std::map<NodeId, net::Endpoint> endpoints_;
};

std::vector<server::DaemonConfig> repair_configs() {
  store::PayloadConfig payload;
  payload.enabled = true;
  payload.seed = 97;
  payload.erasure.enabled = true;
  payload.erasure.data_chunks = 3;
  payload.erasure.restripe = true;
  payload.erasure.repair_bytes_per_round = kRepairBudget;

  std::vector<server::DaemonConfig> configs;
  for (NodeId id = 0; id <= kOriginId; ++id) {
    server::DaemonConfig config;
    config.node_id = id;
    config.role = id == kOriginId ? server::DaemonRole::kOrigin
                                  : server::DaemonRole::kCarpProxy;
    config.proxy_ids = {0, 1, 2, 3, 4, 5, 6, 7};
    config.origin_id = kOriginId;
    config.adc.caching_table_size = 1000;
    config.carp_cache_capacity = 1000;
    config.seed = 1;
    config.payload = payload;
    config.membership = fast_membership(/*seed=*/7);
    configs.push_back(std::move(config));
  }
  return configs;
}

server::LoadGenConfig loadgen_config(std::map<NodeId, net::Endpoint> proxies,
                                     int concurrency) {
  server::LoadGenConfig lg;
  lg.client_id = kClientId;
  lg.proxies = std::move(proxies);
  lg.concurrency = concurrency;
  lg.entry = server::EntryChoice::kRoundRobin;
  lg.idle_timeout_ms = 30000;
  lg.request_timeout_ms = 2000;
  lg.health.max_backoff_us = 250'000;
  return lg;
}

TEST(RestripeCluster, SecondDeathSurvivesBecauseRepairClosedTheWindow) {
  auto poly = workload::PolygraphConfig::scaled(0.004);  // ~16k requests
  poly.seed = 42;
  const std::vector<ObjectId> objects =
      workload::generate_polygraph_trace(poly).requests();
  const std::size_t warm_until = objects.size() * 6 / 10;

  RepairCluster cluster(repair_configs());

  // Warm across all 8 members: every fetched object is striped full-width.
  {
    server::LoadGenerator warmup(loadgen_config(cluster.proxy_endpoints({}), 4));
    std::string error;
    ASSERT_TRUE(warmup.connect(&error)) << error;
    const auto warm = warmup.run(
        {objects.begin(), objects.begin() + static_cast<std::ptrdiff_t>(warm_until)});
    ASSERT_FALSE(warm.timed_out);
    EXPECT_EQ(warm.completed + warm.failed, static_cast<std::uint64_t>(warm_until));
  }

  // Death one: confirm, then let the background repair drain completely —
  // every stripe that lost a chunk is re-homed onto a replacement owner.
  cluster.kill(kVictimA);
  ASSERT_TRUE(cluster.await_epoch(1, std::chrono::seconds(10)))
      << "survivors never confirmed the first death";
  ASSERT_TRUE(cluster.await_repair_drained(std::chrono::seconds(60)))
      << "re-stripe repair never drained after the first death";

  // Death two: without the heal this would leave some stripes at k - 1.
  cluster.kill(kVictimB);
  ASSERT_TRUE(cluster.await_epoch(2, std::chrono::seconds(10)))
      << "survivors never confirmed the second death";
  ASSERT_TRUE(cluster.await_repair_drained(std::chrono::seconds(60)))
      << "re-stripe repair never drained after the second death";

  // Request each dead member's warmed objects exactly once through the six
  // survivors: everything must still resolve, overwhelmingly as degraded
  // reads served from (healed) stripe chunks.
  std::vector<hash::CarpArray::Member> members;
  for (NodeId id = 0; id < kProxies; ++id) {
    members.push_back({"proxy[" + std::to_string(id) + "]", id, 1.0});
  }
  const hash::CarpArray owners{std::move(members)};
  std::vector<ObjectId> victims;
  std::set<ObjectId> seen;
  for (std::size_t i = 0; i < warm_until; ++i) {
    const ObjectId object = objects[i];
    const NodeId owner = owners.owner(object);
    if ((owner == kVictimA || owner == kVictimB) && seen.insert(object).second) {
      victims.push_back(object);
    }
  }
  ASSERT_GT(victims.size(), 100u) << "victims owned too little of the trace";

  server::LoadGenerator loadgen(
      loadgen_config(cluster.proxy_endpoints({kVictimA, kVictimB}), 4));
  std::string error;
  ASSERT_TRUE(loadgen.connect(&error)) << error;
  auto measured = loadgen.run(victims);
  ASSERT_FALSE(measured.timed_out);
  cluster.shutdown();

  // Zero objects lost to the second death: every request resolved, and
  // the overwhelming share came back as chunk-reconstructed reads.
  EXPECT_EQ(measured.completed + measured.failed,
            static_cast<std::uint64_t>(victims.size()));
  ASSERT_GT(measured.completed, 0u);
  EXPECT_GE(static_cast<double>(measured.degraded_reads),
            0.8 * static_cast<double>(measured.completed))
      << measured.text();
  EXPECT_GT(measured.bytes_recovered, 0u);

  // The survivors did real repair work, inside the per-round byte budget,
  // and every reconstructed offer body checksum-verified on receipt.
  std::uint64_t healed = 0, adopted = 0, repair_bytes = 0, rounds = 0;
  for (std::size_t i = 0; i < kProxies; ++i) {
    if (i == kVictimA || i == kVictimB) continue;
    const store::ErasureTier* tier = cluster.daemon(i).hosted_tier();
    ASSERT_NE(tier, nullptr) << "daemon " << i;
    healed += tier->stats().stripes_healed;
    adopted += tier->stats().restripe_adopted;
    repair_bytes += tier->restripe_stats().repair_bytes;
    rounds += tier->restripe_stats().rounds;
    EXPECT_LE(tier->restripe_stats().round_bytes_max, kRepairBudget) << "daemon " << i;
    EXPECT_EQ(cluster.daemon(i).stats().body_verify_failures, 0u) << "daemon " << i;
  }
  EXPECT_GT(healed, 0u);
  EXPECT_GT(adopted, 0u);
  EXPECT_GT(repair_bytes, 0u);
  EXPECT_GT(rounds, 0u);

  // The harness-side report carries the cluster's repair counters into the
  // JSON artifact CI uploads.
  measured.stripes_healed = healed;
  measured.repair_bytes = repair_bytes;
  measured.repair_rounds = rounds;
  const std::string json = measured.json("restripe-two-deaths");
  EXPECT_NE(json.find("\"stripes_healed\": "), std::string::npos);
  EXPECT_NE(json.find("\"repair_bytes\": "), std::string::npos);
  EXPECT_NE(json.find("\"repair_rounds\": "), std::string::npos);
}

}  // namespace
}  // namespace adc
