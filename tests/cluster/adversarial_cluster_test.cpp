// Live-cluster adversarial replays (ctest label: tier2-net).
//
// Boots a real 5-proxy cluster on 127.0.0.1 (ephemeral ports via bind(0),
// like every other cluster test) and replays the hostile workloads from
// src/workload/adversarial.h through the TCP load generator — the live
// counterpart of bench/ext_adversarial:
//
//   * flash crowd — a cold URL ramping to 30% of traffic must *help* an
//     ADC cluster once ramped (the crowd object is one cache line serving
//     a third of all requests), and the cluster must stay within a few
//     percent of the simulator on the identical trace;
//   * hash flood vs CARP — the mined keys all route to the victim daemon,
//     so its requests_received dwarfs its peers', mirroring the
//     simulator's fairness blowout, and the per-entry counters in the
//     loadgen report account for every issued request.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "driver/experiment.h"
#include "net/socket.h"
#include "proxy/hashing_proxy.h"
#include "server/daemon.h"
#include "server/loadgen.h"
#include "workload/adversarial.h"
#include "workload/trace.h"

namespace adc {
namespace {

constexpr int kProxies = 5;
constexpr NodeId kOriginId = 5;
constexpr NodeId kClientId = 6;

class Cluster {
 public:
  explicit Cluster(std::vector<server::DaemonConfig> configs) {
    std::map<NodeId, net::Endpoint> endpoints;
    for (auto& config : configs) {
      config.listen = net::Endpoint{"127.0.0.1", 0};
      auto daemon = std::make_unique<server::NodeDaemon>(config);
      std::string error;
      const std::uint16_t port = daemon->bind(&error);
      EXPECT_NE(port, 0) << error;
      endpoints[config.node_id] = net::Endpoint{"127.0.0.1", port};
      daemons_.push_back(std::move(daemon));
    }
    for (auto& daemon : daemons_) daemon->set_peers(endpoints);
    endpoints_ = std::move(endpoints);
    for (auto& daemon : daemons_) {
      threads_.emplace_back([&daemon]() { daemon->run(); });
    }
  }

  ~Cluster() { shutdown(); }

  void shutdown() {
    for (auto& daemon : daemons_) daemon->stop();
    for (auto& thread : threads_) {
      if (thread.joinable()) thread.join();
    }
  }

  std::map<NodeId, net::Endpoint> proxy_endpoints() const {
    std::map<NodeId, net::Endpoint> out;
    for (const auto& [id, endpoint] : endpoints_) {
      if (id != kOriginId) out[id] = endpoint;
    }
    return out;
  }

  server::NodeDaemon& daemon(std::size_t i) { return *daemons_[i]; }

 private:
  std::vector<std::unique_ptr<server::NodeDaemon>> daemons_;
  std::vector<std::thread> threads_;
  std::map<NodeId, net::Endpoint> endpoints_;
};

std::vector<server::DaemonConfig> cluster_configs(server::DaemonRole proxy_role,
                                                  const core::AdcConfig& adc,
                                                  std::size_t carp_capacity) {
  std::vector<server::DaemonConfig> configs;
  for (NodeId id = 0; id <= kOriginId; ++id) {
    server::DaemonConfig config;
    config.node_id = id;
    config.role = id == kOriginId ? server::DaemonRole::kOrigin : proxy_role;
    config.proxy_ids = {0, 1, 2, 3, 4};
    config.origin_id = kOriginId;
    config.adc = adc;
    config.carp_cache_capacity = carp_capacity;
    config.seed = 1;
    configs.push_back(std::move(config));
  }
  return configs;
}

server::LoadGenReport replay(const Cluster& cluster, const std::vector<ObjectId>& objects,
                             int concurrency) {
  server::LoadGenConfig config;
  config.client_id = kClientId;
  config.proxies = cluster.proxy_endpoints();
  config.concurrency = concurrency;
  config.entry = server::EntryChoice::kRoundRobin;
  config.idle_timeout_ms = 30000;
  server::LoadGenerator loadgen(std::move(config));
  std::string error;
  if (!loadgen.connect(&error)) {
    ADD_FAILURE() << error;
    server::LoadGenReport failed;
    failed.timed_out = true;
    return failed;
  }
  return loadgen.run(objects);
}

TEST(AdversarialCluster, FlashCrowdReplayTracksSimulator) {
  workload::FlashCrowdConfig crowd;
  crowd.requests = 20'000;
  crowd.benign_universe = 4'000;
  const workload::Trace trace = workload::generate_flash_crowd_trace(crowd);

  core::AdcConfig adc;
  adc.single_table_size = 2000;
  adc.multiple_table_size = 2000;
  adc.caching_table_size = 1000;

  driver::ExperimentConfig sim_config;
  sim_config.scheme = driver::Scheme::kAdc;
  sim_config.proxies = kProxies;
  sim_config.adc = adc;
  sim_config.entry_policy = proxy::EntryPolicy::kRoundRobin;
  sim_config.concurrency = 4;
  sim_config.seed = 1;
  const driver::ExperimentResult expected = run_experiment(sim_config, trace);
  ASSERT_EQ(expected.summary.completed, trace.size());

  const Cluster cluster(cluster_configs(server::DaemonRole::kAdcProxy, adc, 1000));
  const server::LoadGenReport report = replay(cluster, trace.requests(), 4);

  ASSERT_FALSE(report.timed_out);
  ASSERT_EQ(report.completed, trace.size());

  // ADC's random forwarding makes live and sim runs statistically — not
  // bit — identical; the crowd phase amplifies the variance (one object is
  // 30% of traffic), so the tolerance is wider than the PolyMix test's 1%.
  const double sim_hit_rate = expected.summary.hit_rate();
  EXPECT_NEAR(report.hit_rate(), sim_hit_rate, 0.05 * sim_hit_rate)
      << "cluster=" << report.hit_rate() << " sim=" << sim_hit_rate;
  // Once ramped, the crowd object alone serves ~30% of requests from
  // cache, so the overall hit rate cannot be below the crowd share.
  EXPECT_GT(report.hit_rate(), 0.3);

  // The new per-entry accounting covers every issued request, spread
  // round-robin across entries (fairness ~1).
  std::uint64_t entry_total = 0;
  for (const auto& [entry, count] : report.entry_requests) entry_total += count;
  EXPECT_EQ(entry_total, report.issued);
  EXPECT_EQ(report.entry_requests.size(), static_cast<std::size_t>(kProxies));
  EXPECT_LT(report.entry_fairness(), 1.01);
  EXPECT_LE(report.latency_p99_us, report.latency_p999_us);
}

TEST(AdversarialCluster, HashFloodConcentratesOnCarpVictimDaemon) {
  workload::HashFloodConfig flood;
  flood.scheme = workload::FloodScheme::kCarp;
  flood.proxies = kProxies;
  flood.victim = 2;
  flood.requests = 10'000;
  flood.flood_keys = 64;
  flood.benign_universe = 2'000;
  const workload::Trace trace = workload::generate_hash_flood_trace(flood);

  core::AdcConfig adc;
  adc.caching_table_size = 500;

  Cluster cluster(cluster_configs(server::DaemonRole::kCarpProxy, adc, 500));
  const server::LoadGenReport report = replay(cluster, trace.requests(), 2);
  ASSERT_FALSE(report.timed_out);
  ASSERT_EQ(report.completed, trace.size());
  cluster.shutdown();

  // Every flooded request ends at the mined victim daemon: its received
  // count must dominate every peer's (80% of traffic + its 1/5 share of
  // the benign rest vs ~benign/5 + entry duty each for the others).
  // Safe to read after shutdown() joined the daemon threads.
  const auto received = [&](std::size_t i) {
    return static_cast<const proxy::HashingProxy&>(cluster.daemon(i).hosted())
        .stats()
        .requests_received;
  };
  const std::uint64_t victim_received = received(2);
  for (std::size_t i = 0; i < kProxies; ++i) {
    if (i == 2) continue;
    EXPECT_GT(victim_received, 2 * received(i)) << "peer " << i;
  }
}

}  // namespace
}  // namespace adc
