#include "hash/fnv.h"

#include <gtest/gtest.h>

namespace adc::hash {
namespace {

TEST(Fnv, KnownVectors64) {
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(Fnv, KnownVectors32) {
  EXPECT_EQ(fnv1a32(""), 0x811c9dc5u);
  EXPECT_EQ(fnv1a32("a"), 0xe40c292cu);
  EXPECT_EQ(fnv1a32("foobar"), 0xbf9cf968u);
}

TEST(Fnv, IsConstexpr) {
  static_assert(fnv1a64("abc") != 0);
  static_assert(fnv1a32("abc") != 0);
  SUCCEED();
}

TEST(Fnv, U64VariantMatchesByteInterpretation) {
  // fnv1a64_u64 hashes the 8 little-endian bytes of the value.
  const std::uint64_t value = 0x0102030405060708ULL;
  const char bytes[] = {'\x08', '\x07', '\x06', '\x05', '\x04', '\x03', '\x02', '\x01'};
  EXPECT_EQ(fnv1a64_u64(value), fnv1a64(std::string_view(bytes, 8)));
}

TEST(Fnv, U64DistinguishesNeighbours) {
  EXPECT_NE(fnv1a64_u64(1), fnv1a64_u64(2));
  EXPECT_NE(fnv1a64_u64(0), fnv1a64_u64(1ULL << 63));
}

}  // namespace
}  // namespace adc::hash
