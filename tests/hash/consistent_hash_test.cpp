#include "hash/consistent_hash.h"

#include <gtest/gtest.h>

#include <map>

#include "util/rng.h"

namespace adc::hash {
namespace {

ConsistentHashRing make_ring(int members, int vnodes = 64) {
  ConsistentHashRing ring(vnodes);
  for (int i = 0; i < members; ++i) {
    ring.add_member(static_cast<NodeId>(i), "proxy[" + std::to_string(i) + "]");
  }
  return ring;
}

TEST(ConsistentHash, RingPointCount) {
  const auto ring = make_ring(5, 32);
  EXPECT_EQ(ring.member_count(), 5u);
  EXPECT_EQ(ring.ring_size(), 5u * 32u);
}

TEST(ConsistentHash, OwnerIsStable) {
  const auto ring = make_ring(5);
  for (ObjectId oid = 1; oid <= 200; ++oid) EXPECT_EQ(ring.owner(oid), ring.owner(oid));
}

TEST(ConsistentHash, BalanceWithinTolerance) {
  const auto ring = make_ring(5, 128);
  std::map<NodeId, int> counts;
  util::Rng rng(1);
  constexpr int kKeys = 50000;
  for (int i = 0; i < kKeys; ++i) ++counts[ring.owner(static_cast<ObjectId>(rng.next()))];
  for (const auto& [node, count] : counts) {
    EXPECT_NEAR(count, kKeys / 5, kKeys / 5 * 0.25) << "member " << node;
  }
}

TEST(ConsistentHash, RemovalOnlyRemapsVictimShare) {
  auto ring = make_ring(5);
  util::Rng rng(2);
  std::map<ObjectId, NodeId> before;
  for (int i = 0; i < 20000; ++i) {
    const auto oid = static_cast<ObjectId>(rng.next());
    before[oid] = ring.owner(oid);
  }
  ring.remove_member(4);
  int moved_unnecessarily = 0;
  for (const auto& [oid, owner] : before) {
    if (owner == 4) continue;
    if (ring.owner(oid) != owner) ++moved_unnecessarily;
  }
  EXPECT_EQ(moved_unnecessarily, 0);
}

TEST(ConsistentHash, RemoveThenReaddRestoresMapping) {
  auto ring = make_ring(5);
  util::Rng rng(3);
  std::map<ObjectId, NodeId> before;
  for (int i = 0; i < 5000; ++i) {
    const auto oid = static_cast<ObjectId>(rng.next());
    before[oid] = ring.owner(oid);
  }
  ring.remove_member(2);
  ring.add_member(2, "proxy[2]");
  for (const auto& [oid, owner] : before) EXPECT_EQ(ring.owner(oid), owner);
}

TEST(ConsistentHash, RemovingUnknownMemberIsNoOp) {
  auto ring = make_ring(3);
  ring.remove_member(99);
  EXPECT_EQ(ring.member_count(), 3u);
  EXPECT_EQ(ring.ring_size(), 3u * 64u);
}

TEST(ConsistentHash, SingleMemberOwnsEverything) {
  const auto ring = make_ring(1);
  util::Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(ring.owner(static_cast<ObjectId>(rng.next())), 0);
  }
}

}  // namespace
}  // namespace adc::hash
