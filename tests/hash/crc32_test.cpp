#include "hash/crc32.h"

#include <gtest/gtest.h>

#include <string>

namespace adc::hash {
namespace {

TEST(Crc32, KnownVectors) {
  // The canonical IEEE CRC-32 check value.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0x00000000u);
  EXPECT_EQ(crc32("a"), 0xE8B7BE43u);
  EXPECT_EQ(crc32("abc"), 0x352441C2u);
  EXPECT_EQ(crc32("The quick brown fox jumps over the lazy dog"), 0x414FA339u);
}

TEST(Crc32, ChainingEqualsOneShot) {
  const std::string input = "hello, distributed caches";
  for (std::size_t cut = 0; cut <= input.size(); ++cut) {
    const std::uint32_t first = crc32(input.substr(0, cut));
    const std::uint32_t chained = crc32(input.substr(cut), first);
    EXPECT_EQ(chained, crc32(input)) << "cut at " << cut;
  }
}

TEST(Crc32, SensitiveToEveryByte) {
  std::string data = "sensitivity";
  const std::uint32_t base = crc32(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    std::string mutated = data;
    mutated[i] ^= 1;
    EXPECT_NE(crc32(mutated), base) << "byte " << i;
  }
}

TEST(Crc32, BinaryData) {
  const unsigned char bytes[] = {0x00, 0xff, 0x10, 0x80, 0x7f};
  EXPECT_EQ(crc32(bytes, sizeof(bytes)), crc32(bytes, sizeof(bytes)));
  EXPECT_NE(crc32(bytes, sizeof(bytes)), crc32(bytes, sizeof(bytes) - 1));
}

}  // namespace
}  // namespace adc::hash
