#include "hash/md5.h"

#include <gtest/gtest.h>

#include <string>

namespace adc::hash {
namespace {

std::string hex_of(std::string_view input) { return Md5::hex(Md5::digest(input)); }

// The seven test vectors from RFC 1321, appendix A.5.
TEST(Md5, Rfc1321Vectors) {
  EXPECT_EQ(hex_of(""), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(hex_of("a"), "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(hex_of("abc"), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(hex_of("message digest"), "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(hex_of("abcdefghijklmnopqrstuvwxyz"), "c3fcd3d76192e4007dfb496cca67e13b");
  EXPECT_EQ(hex_of("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"),
            "d174ab98d277d9f5a5611c2c9f419d9f");
  EXPECT_EQ(hex_of("1234567890123456789012345678901234567890"
                   "1234567890123456789012345678901234567890"),
            "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5, IncrementalEqualsOneShot) {
  const std::string input = "the quick brown fox jumps over the lazy dog, repeatedly";
  for (std::size_t cut = 0; cut <= input.size(); ++cut) {
    Md5 md5;
    md5.update(input.substr(0, cut));
    md5.update(input.substr(cut));
    EXPECT_EQ(Md5::hex(md5.finish()), hex_of(input)) << "cut at " << cut;
  }
}

// Exercise every padding branch: lengths straddling the 56-byte and
// 64-byte block boundaries.
TEST(Md5, BlockBoundaryLengths) {
  for (const std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 121u, 128u}) {
    const std::string input(len, 'x');
    Md5 incremental;
    for (char c : input) incremental.update(&c, 1);
    EXPECT_EQ(incremental.finish(), Md5::digest(input)) << "length " << len;
  }
}

TEST(Md5, ResetAllowsReuse) {
  Md5 md5;
  md5.update("first");
  (void)md5.finish();
  md5.reset();
  md5.update("abc");
  EXPECT_EQ(Md5::hex(md5.finish()), "900150983cd24fb0d6963f7d28e17f72");
}

TEST(Md5, Digest64IsLittleEndianPrefix) {
  // "abc" digest starts 90 01 50 98 3c d2 4f b0; little-endian 64-bit.
  EXPECT_EQ(Md5::digest64("abc"), 0xb04fd23c98500190ULL);
}

TEST(Md5, Digest64DistinguishesInputs) {
  EXPECT_NE(Md5::digest64("http://a.test/1"), Md5::digest64("http://a.test/2"));
  EXPECT_NE(Md5::digest64(""), Md5::digest64(" "));
}

TEST(Md5, MillionAs) {
  // The classic extended vector: MD5 of one million 'a' characters.
  Md5 md5;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) md5.update(chunk);
  EXPECT_EQ(Md5::hex(md5.finish()), "7707d6ae4e027c70eea2a935c2296f21");
}

TEST(Md5, LargeInput) {
  // 1 MiB of repeating bytes — exercises the multi-block fast path.
  std::string big(1 << 20, '\x5a');
  EXPECT_EQ(Md5::hex(Md5::digest(big)), Md5::hex(Md5::digest(big)));
  Md5 chunked;
  for (std::size_t i = 0; i < big.size(); i += 4096) {
    chunked.update(big.data() + i, 4096);
  }
  EXPECT_EQ(chunked.finish(), Md5::digest(big));
}

}  // namespace
}  // namespace adc::hash
