#include "hash/rendezvous.h"

#include <gtest/gtest.h>

#include <map>

#include "util/rng.h"

namespace adc::hash {
namespace {

RendezvousHash make_hrw(int members) {
  RendezvousHash hrw;
  for (int i = 0; i < members; ++i) {
    hrw.add_member(static_cast<NodeId>(i), "proxy[" + std::to_string(i) + "]");
  }
  return hrw;
}

TEST(Rendezvous, OwnerIsStable) {
  const auto hrw = make_hrw(5);
  for (ObjectId oid = 1; oid <= 200; ++oid) EXPECT_EQ(hrw.owner(oid), hrw.owner(oid));
}

TEST(Rendezvous, Balance) {
  const auto hrw = make_hrw(5);
  std::map<NodeId, int> counts;
  util::Rng rng(1);
  constexpr int kKeys = 50000;
  for (int i = 0; i < kKeys; ++i) ++counts[hrw.owner(static_cast<ObjectId>(rng.next()))];
  for (const auto& [node, count] : counts) {
    EXPECT_NEAR(count, kKeys / 5, kKeys / 5 * 0.10) << "member " << node;
  }
}

TEST(Rendezvous, RemovalOnlyRemapsVictimShare) {
  auto hrw = make_hrw(5);
  util::Rng rng(2);
  std::map<ObjectId, NodeId> before;
  for (int i = 0; i < 20000; ++i) {
    const auto oid = static_cast<ObjectId>(rng.next());
    before[oid] = hrw.owner(oid);
  }
  hrw.remove_member(4);
  int moved_unnecessarily = 0;
  for (const auto& [oid, owner] : before) {
    if (owner == 4) continue;
    if (hrw.owner(oid) != owner) ++moved_unnecessarily;
  }
  EXPECT_EQ(moved_unnecessarily, 0);
}

TEST(Rendezvous, WeightsSkewAllocation) {
  RendezvousHash hrw;
  hrw.add_member(0, "light-a", 1.0);
  hrw.add_member(1, "light-b", 1.0);
  hrw.add_member(2, "heavy", 3.0);
  std::map<NodeId, int> counts;
  util::Rng rng(3);
  constexpr int kKeys = 100000;
  for (int i = 0; i < kKeys; ++i) ++counts[hrw.owner(static_cast<ObjectId>(rng.next()))];
  const double heavy = counts[2];
  const double light = (counts[0] + counts[1]) / 2.0;
  EXPECT_NEAR(heavy / light, 3.0, 0.4);
}

TEST(Rendezvous, MemberCountTracksChanges) {
  auto hrw = make_hrw(3);
  EXPECT_EQ(hrw.member_count(), 3u);
  hrw.remove_member(1);
  EXPECT_EQ(hrw.member_count(), 2u);
  hrw.remove_member(1);  // already gone
  EXPECT_EQ(hrw.member_count(), 2u);
}

TEST(Rendezvous, SingleMemberOwnsEverything) {
  const auto hrw = make_hrw(1);
  util::Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(hrw.owner(static_cast<ObjectId>(rng.next())), 0);
  }
}

}  // namespace
}  // namespace adc::hash
