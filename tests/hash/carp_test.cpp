#include "hash/carp.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "util/rng.h"

namespace adc::hash {
namespace {

CarpArray make_array(int n, std::vector<double> load_factors = {}) {
  std::vector<CarpArray::Member> members;
  for (int i = 0; i < n; ++i) {
    const double lf = load_factors.empty() ? 1.0 : load_factors[static_cast<std::size_t>(i)];
    members.push_back({"proxy[" + std::to_string(i) + "]", static_cast<NodeId>(i), lf});
  }
  return CarpArray(std::move(members));
}

TEST(CarpHash, UrlHashIsDeterministic) {
  EXPECT_EQ(carp_url_hash("http://a.test/x"), carp_url_hash("http://a.test/x"));
  EXPECT_NE(carp_url_hash("http://a.test/x"), carp_url_hash("http://a.test/y"));
  EXPECT_EQ(carp_url_hash(""), 0u);
}

TEST(CarpHash, MemberHashDiffersFromUrlHash) {
  // The member hash applies an extra scramble, so equal strings must not
  // produce equal values through both functions.
  EXPECT_NE(carp_member_hash("proxy1"), carp_url_hash("proxy1"));
}

TEST(CarpHash, CombineMixesBothInputs) {
  const std::uint32_t u1 = carp_url_hash("url-one");
  const std::uint32_t u2 = carp_url_hash("url-two");
  const std::uint32_t m1 = carp_member_hash("m-one");
  const std::uint32_t m2 = carp_member_hash("m-two");
  EXPECT_NE(carp_combine(u1, m1), carp_combine(u2, m1));
  EXPECT_NE(carp_combine(u1, m1), carp_combine(u1, m2));
}

TEST(CarpArray, OwnerIsStable) {
  const CarpArray array = make_array(5);
  for (ObjectId oid = 1; oid <= 100; ++oid) {
    EXPECT_EQ(array.owner(oid), array.owner(oid));
  }
}

TEST(CarpArray, OwnerInRange) {
  const CarpArray array = make_array(5);
  util::Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const NodeId owner = array.owner(static_cast<ObjectId>(rng.next()));
    EXPECT_GE(owner, 0);
    EXPECT_LT(owner, 5);
  }
}

TEST(CarpArray, EqualLoadFactorsBalance) {
  const CarpArray array = make_array(5);
  std::map<NodeId, int> counts;
  util::Rng rng(2);
  constexpr int kKeys = 50000;
  for (int i = 0; i < kKeys; ++i) ++counts[array.owner(static_cast<ObjectId>(rng.next()))];
  for (const auto& [node, count] : counts) {
    EXPECT_NEAR(count, kKeys / 5, kKeys / 5 * 0.10) << "member " << node;
  }
}

TEST(CarpArray, LoadFactorsSkewAllocation) {
  // One member with double weight should receive roughly double share.
  const CarpArray array = make_array(4, {1.0, 1.0, 1.0, 2.0});
  std::map<NodeId, int> counts;
  util::Rng rng(3);
  constexpr int kKeys = 100000;
  for (int i = 0; i < kKeys; ++i) ++counts[array.owner(static_cast<ObjectId>(rng.next()))];
  const double heavy = counts[3];
  const double light = (counts[0] + counts[1] + counts[2]) / 3.0;
  EXPECT_NEAR(heavy / light, 2.0, 0.35);
}

TEST(CarpArray, MembershipChangeOnlyRemapsVictimShare) {
  // CARP's headline property: removing one member only remaps the objects
  // that member owned; everything else keeps its owner.
  const CarpArray five = make_array(5);
  const CarpArray four = make_array(4);  // member 4 removed
  util::Rng rng(4);
  int moved_unnecessarily = 0;
  int checked = 0;
  for (int i = 0; i < 20000; ++i) {
    const auto oid = static_cast<ObjectId>(rng.next());
    const NodeId before = five.owner(oid);
    if (before == 4) continue;  // its objects must remap, by definition
    ++checked;
    if (four.owner(oid) != before) ++moved_unnecessarily;
  }
  EXPECT_GT(checked, 10000);
  EXPECT_EQ(moved_unnecessarily, 0);
}

TEST(CarpArray, UrlAndOidOverloadsAreBothUsable) {
  const CarpArray array = make_array(3);
  EXPECT_EQ(array.owner("http://w1.test/a"), array.owner("http://w1.test/a"));
  EXPECT_EQ(array.owner(ObjectId{12345}), array.owner(ObjectId{12345}));
}

TEST(CarpArray, SingleMemberOwnsEverything) {
  const CarpArray array = make_array(1);
  util::Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(array.owner(static_cast<ObjectId>(rng.next())), 0);
  }
}

TEST(CarpArray, MemberAccessors) {
  const CarpArray array = make_array(3);
  EXPECT_EQ(array.size(), 3u);
  EXPECT_FALSE(array.empty());
  EXPECT_EQ(array.member(1).name, "proxy[1]");
  EXPECT_EQ(array.member(1).node, 1);
}

}  // namespace
}  // namespace adc::hash
