// Protocol-level verification of multicasting-by-backwarding (paper
// Section III.2): for EVERY request journey, the reply must retrace the
// request's forwarding path in exact reverse — that is the mechanism all
// of ADC's location agreement rests on.  Reconstructed from the
// simulator's message observer, with no cooperation from the proxies.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "core/adc_proxy.h"
#include "proxy/client.h"
#include "proxy/origin_server.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace adc {
namespace {

using core::AdcConfig;
using core::AdcProxy;
using sim::Message;
using sim::MessageKind;

struct Journey {
  std::vector<NodeId> request_targets;  // consecutive receivers of the request
  std::vector<NodeId> reply_targets;    // consecutive receivers of the reply
};

TEST(Backwarding, ReplyRetracesRequestPathInReverse) {
  constexpr int kProxies = 5;
  AdcConfig config;
  config.single_table_size = 64;
  config.multiple_table_size = 64;
  config.caching_table_size = 16;

  sim::Simulator sim(123);
  std::vector<NodeId> ids;
  for (int i = 0; i < kProxies; ++i) ids.push_back(i);
  const NodeId origin_id = kProxies;
  const NodeId client_id = kProxies + 1;
  for (int i = 0; i < kProxies; ++i) {
    sim.add_node(std::make_unique<AdcProxy>(i, "proxy[" + std::to_string(i) + "]", config,
                                            ids, origin_id));
  }
  sim.add_node(std::make_unique<proxy::OriginServer>(origin_id, "origin"));

  util::Rng rng(5);
  std::vector<ObjectId> requests;
  for (int i = 0; i < 800; ++i) requests.push_back(1 + rng.below(120));
  proxy::VectorStream stream(requests);
  auto client_node = std::make_unique<proxy::Client>(client_id, "client", stream, ids);
  auto* client = client_node.get();
  sim.add_node(std::move(client_node));

  std::map<RequestId, Journey> journeys;
  sim.set_message_observer([&journeys](const Message& msg, SimTime) {
    Journey& journey = journeys[msg.request_id];
    if (msg.kind == MessageKind::kRequest) {
      journey.request_targets.push_back(msg.target);
    } else {
      journey.reply_targets.push_back(msg.target);
    }
  });

  client->start(sim);
  sim.run();
  ASSERT_TRUE(client->drained());
  ASSERT_EQ(journeys.size(), requests.size());

  for (const auto& [id, journey] : journeys) {
    const auto& fwd = journey.request_targets;
    const auto& bwd = journey.reply_targets;
    ASSERT_FALSE(fwd.empty());
    ASSERT_FALSE(bwd.empty());

    // The reply ends at the client.
    ASSERT_EQ(bwd.back(), client->id()) << "request " << id;

    if (fwd.back() == origin_id) {
      // Origin-resolved: |bwd| == |fwd|; the reply visits the forward
      // path's nodes in reverse (origin -> ... -> client).  fwd =
      // [p_1, ..., p_k, origin]; bwd must be [p_k, ..., p_1, client].
      ASSERT_EQ(bwd.size(), fwd.size()) << "request " << id;
      for (std::size_t i = 0; i + 1 < fwd.size(); ++i) {
        EXPECT_EQ(bwd[i], fwd[fwd.size() - 2 - i]) << "request " << id << " step " << i;
      }
    } else {
      // Cache hit at the last forwarded proxy: fwd = [p_1, ..., p_k]
      // (p_k resolved), bwd = [p_{k-1}, ..., p_1, client].
      ASSERT_EQ(bwd.size(), fwd.size()) << "request " << id;
      for (std::size_t i = 0; i + 1 < bwd.size(); ++i) {
        EXPECT_EQ(bwd[i], fwd[fwd.size() - 2 - i]) << "request " << id << " step " << i;
      }
    }

    // Hop accounting: total transfers equal forward + backward legs.
    // (Verified indirectly: every leg was observed exactly once.)
  }
}

TEST(Backwarding, ObserverSeesEveryTransfer) {
  AdcConfig config;
  config.single_table_size = 16;
  config.multiple_table_size = 16;
  config.caching_table_size = 8;

  sim::Simulator sim(7);
  std::vector<NodeId> ids = {0};
  sim.add_node(std::make_unique<AdcProxy>(0, "proxy[0]", config, ids, 1));
  sim.add_node(std::make_unique<proxy::OriginServer>(1, "origin"));
  proxy::VectorStream stream({42});
  auto client_node = std::make_unique<proxy::Client>(2, "client", stream, ids);
  auto* client = client_node.get();
  sim.add_node(std::move(client_node));

  std::uint64_t observed = 0;
  sim.set_message_observer([&observed](const Message&, SimTime) { ++observed; });
  client->start(sim);
  sim.run();
  EXPECT_EQ(observed, sim.network().messages_sent());
  // Single proxy, cold object: 6 transfers (see AdcProxy hop tests).
  EXPECT_EQ(observed, 6u);
}

}  // namespace
}  // namespace adc
