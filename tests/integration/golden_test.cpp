// Golden-value regression tests for the five figure reproductions
// (Figures 11-15) at small scale: one fixed (config, trace, seed) per
// figure with its headline metrics pinned to exact values.
// run_experiment() is deterministic, so any drift here means a refactor
// changed the simulation — the paper reproduction — not just the code.
//
// Regenerating after an *intentional* behavior change:
//   ADC_GOLDEN_PRINT=1 ./build/tests/adc_tests_integration \
//       --gtest_filter='Golden*' 2>&1 | grep GOLDEN
// then paste the printed values over the literals below and say why in
// the commit message.
#include <gtest/gtest.h>

#include <cstdlib>
#include <iostream>

#include "driver/experiment.h"
#include "driver/sweep.h"
#include "workload/polygraph.h"

namespace adc::driver {
namespace {

// ~1/500-scale analogue of the paper's three-phase PolyMix-like workload.
workload::Trace golden_trace() {
  workload::PolygraphConfig config;
  config.fill_requests = 2000;
  config.phase2_requests = 3000;
  config.phase3_requests = 2500;
  config.hot_set_size = 200;
  config.seed = 42;
  return workload::generate_polygraph_trace(config);
}

// The paper's 5-proxy deployment with table sizes scaled to the trace
// (single=multiple=400, caching=200 mirrors the 20k/20k/10k defaults).
ExperimentConfig golden_config() {
  ExperimentConfig config;
  config.scheme = Scheme::kAdc;
  config.proxies = 5;
  config.adc.single_table_size = 400;
  config.adc.multiple_table_size = 400;
  config.adc.caching_table_size = 200;
  config.seed = 1;
  config.ma_window = 500;
  config.sample_every = 0;
  return config;
}

bool print_golden() { return std::getenv("ADC_GOLDEN_PRINT") != nullptr; }

void print_run(const char* label, const ExperimentResult& result) {
  std::cout << "GOLDEN " << label << " completed=" << result.summary.completed
            << " hits=" << result.summary.hits << " total_hops=" << result.summary.total_hops
            << " total_forwards=" << result.summary.total_forwards
            << " origin_served=" << result.origin_served << " messages=" << result.messages
            << " hops_p50=" << result.hops_p50 << " hops_p95=" << result.hops_p95
            << " hops_max=" << result.hops_max << '\n';
}

// Figure 11 (hit rate) + Figure 12 (hops), ADC side.
TEST(GoldenFig11Fig12, AdcRunIsPinned) {
  const auto trace = golden_trace();
  const ExperimentResult result = run_experiment(golden_config(), trace);
  if (print_golden()) print_run("adc", result);

  EXPECT_EQ(result.summary.completed, 7500u);
  EXPECT_EQ(result.summary.hits, 3711u);
  EXPECT_EQ(result.summary.total_hops, 39814u);
  EXPECT_EQ(result.origin_served, 3789u);
  EXPECT_EQ(result.messages, 39814u);
  EXPECT_EQ(result.hops_p50, 4);
  EXPECT_EQ(result.hops_p95, 12);
  EXPECT_EQ(result.hops_max, 14);
}

// Figure 11/12, CARP (hashing baseline) side.
TEST(GoldenFig11Fig12, CarpRunIsPinned) {
  const auto trace = golden_trace();
  ExperimentConfig config = golden_config();
  config.scheme = Scheme::kCarp;
  const ExperimentResult result = run_experiment(config, trace);
  if (print_golden()) print_run("carp", result);

  EXPECT_EQ(result.summary.completed, 7500u);
  EXPECT_EQ(result.summary.hits, 4531u);
  EXPECT_EQ(result.summary.total_hops, 27027u);
  EXPECT_EQ(result.origin_served, 2969u);
  EXPECT_EQ(result.hops_p50, 3);
  EXPECT_EQ(result.hops_p95, 5);
  EXPECT_EQ(result.hops_max, 5);
}

// Figures 13/14: the table-size sweep's per-point hit rate and hops.
// Hit rates are exact ratios of pinned integer counters, so the doubles
// are pinned too (EXPECT_DOUBLE_EQ = 4-ULP tolerance).
TEST(GoldenFig13Fig14, SweepPointsArePinned) {
  const auto trace = golden_trace();
  const auto points = run_table_sweep(golden_config(), trace,
                                      {SweptTable::kCaching, SweptTable::kSingle}, {100, 300});
  ASSERT_EQ(points.size(), 4u);
  if (print_golden()) {
    for (const auto& point : points) {
      std::cout.precision(17);
      std::cout << "GOLDEN sweep " << swept_table_name(point.table) << "/" << point.size
                << " hit_rate=" << point.hit_rate << " avg_hops=" << point.avg_hops << '\n';
    }
  }

  EXPECT_DOUBLE_EQ(points[0].hit_rate, 0.4844);                // caching/100
  EXPECT_DOUBLE_EQ(points[0].avg_hops, 5.3357333333333337);
  EXPECT_DOUBLE_EQ(points[1].hit_rate, 0.49480000000000002);   // caching/300
  EXPECT_DOUBLE_EQ(points[1].avg_hops, 5.3085333333333331);
  EXPECT_DOUBLE_EQ(points[2].hit_rate, 0.47653333333333331);   // single/100
  EXPECT_DOUBLE_EQ(points[2].avg_hops, 5.3975999999999997);
  EXPECT_DOUBLE_EQ(points[3].hit_rate, 0.49080000000000001);   // single/300
  EXPECT_DOUBLE_EQ(points[3].avg_hops, 5.3082666666666665);
}

// Figure 15 runs the same sweep with the paper's *faithful* table
// structures (linked-list single table, binary-searched arrays); the
// plotted quantity is wall time, which cannot be pinned, but the
// simulation outcome must not depend on the table implementation's speed.
TEST(GoldenFig15, FaithfulTableModeIsPinned) {
  const auto trace = golden_trace();
  ExperimentConfig config = golden_config();
  config.adc.table_impl = cache::TableImpl::kFaithful;
  const ExperimentResult result = run_experiment(config, trace);
  if (print_golden()) print_run("faithful", result);

  EXPECT_EQ(result.summary.completed, 7500u);
  EXPECT_EQ(result.summary.hits, 3711u);
  EXPECT_EQ(result.summary.total_hops, 39814u);
  EXPECT_EQ(result.origin_served, 3789u);
  EXPECT_GE(result.wall_seconds, 0.0);
}

}  // namespace
}  // namespace adc::driver
