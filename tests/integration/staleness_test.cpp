// End-to-end staleness accounting: with origin-side updates enabled, hits
// that serve outdated data are counted, monotonically in the update rate,
// and never when versioning is off.
#include <gtest/gtest.h>

#include "driver/experiment.h"
#include "workload/polygraph.h"

namespace adc {
namespace {

workload::Trace staleness_trace() {
  workload::PolygraphConfig config;
  config.fill_requests = 1000;
  config.phase2_requests = 4000;
  config.phase3_requests = 3000;
  config.hot_set_size = 100;
  config.seed = 51;
  return workload::generate_polygraph_trace(config);
}

driver::ExperimentConfig config_with_updates(driver::Scheme scheme, SimTime interval) {
  driver::ExperimentConfig config;
  config.scheme = scheme;
  config.proxies = 3;
  config.adc.single_table_size = 200;
  config.adc.multiple_table_size = 200;
  config.adc.caching_table_size = 100;
  config.sample_every = 0;
  config.object_update_interval = interval;
  return config;
}

class StalenessTest : public ::testing::TestWithParam<driver::Scheme> {};

TEST_P(StalenessTest, NoUpdatesNoStaleHits) {
  const auto trace = staleness_trace();
  const auto result = driver::run_experiment(config_with_updates(GetParam(), 0), trace);
  EXPECT_EQ(result.summary.stale_hits, 0u);
  EXPECT_EQ(result.summary.stale_rate(), 0.0);
}

TEST_P(StalenessTest, UpdatesProduceStaleHits) {
  const auto trace = staleness_trace();
  // Aggressive churn: objects update every ~2k time units while the run
  // spans hundreds of thousands.
  const auto result = driver::run_experiment(config_with_updates(GetParam(), 2000), trace);
  EXPECT_GT(result.summary.stale_hits, 0u);
  EXPECT_LE(result.summary.stale_hits, result.summary.hits);
  EXPECT_GT(result.summary.stale_rate(), 0.0);
  EXPECT_LE(result.summary.stale_rate(), 1.0);
}

TEST_P(StalenessTest, FasterChurnMeansMoreStaleness) {
  const auto trace = staleness_trace();
  const auto slow = driver::run_experiment(config_with_updates(GetParam(), 100000), trace);
  const auto fast = driver::run_experiment(config_with_updates(GetParam(), 2000), trace);
  EXPECT_GT(fast.summary.stale_rate(), slow.summary.stale_rate());
}

TEST_P(StalenessTest, VersioningDoesNotChangeHitsOrHops) {
  // Versioning is pure measurement: the request routing must be
  // bit-identical with and without it.
  const auto trace = staleness_trace();
  const auto off = driver::run_experiment(config_with_updates(GetParam(), 0), trace);
  const auto on = driver::run_experiment(config_with_updates(GetParam(), 2000), trace);
  EXPECT_EQ(off.summary.hits, on.summary.hits);
  EXPECT_EQ(off.summary.total_hops, on.summary.total_hops);
  EXPECT_EQ(off.origin_served, on.origin_served);
}

INSTANTIATE_TEST_SUITE_P(Schemes, StalenessTest,
                         ::testing::Values(driver::Scheme::kAdc, driver::Scheme::kCarp,
                                           driver::Scheme::kHierarchical,
                                           driver::Scheme::kSoap),
                         [](const auto& info) {
                           return std::string(driver::scheme_name(info.param));
                         });

}  // namespace
}  // namespace adc
