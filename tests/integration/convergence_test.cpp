// Integration tests for ADC's self-organization claims (paper Section
// III): proxies agree on object locations without a coordinator or
// broadcasts, hot objects converge onto a single caching location, and the
// repeat phase is served mostly from caches.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "core/adc_proxy.h"
#include "proxy/client.h"
#include "proxy/origin_server.h"
#include "sim/simulator.h"
#include "workload/polygraph.h"

namespace adc {
namespace {

using core::AdcConfig;
using core::AdcProxy;

struct Deployment {
  Deployment(int n, std::vector<ObjectId> requests, const AdcConfig& config,
             std::uint64_t seed = 1)
      : sim(seed), stream(std::move(requests)) {
    std::vector<NodeId> ids;
    for (int i = 0; i < n; ++i) ids.push_back(i);
    const NodeId origin_id = n;
    for (int i = 0; i < n; ++i) {
      auto node = std::make_unique<AdcProxy>(i, "proxy[" + std::to_string(i) + "]", config,
                                             ids, origin_id);
      proxies.push_back(node.get());
      sim.add_node(std::move(node));
    }
    auto origin_node = std::make_unique<proxy::OriginServer>(origin_id, "origin");
    origin = origin_node.get();
    sim.add_node(std::move(origin_node));
    auto client_node = std::make_unique<proxy::Client>(n + 1, "client", stream, ids,
                                                       proxy::EntryPolicy::kRandom);
    client = client_node.get();
    sim.add_node(std::move(client_node));
  }

  void run() {
    client->start(sim);
    sim.run();
  }

  sim::Simulator sim;
  proxy::VectorStream stream;
  std::vector<AdcProxy*> proxies;
  proxy::OriginServer* origin = nullptr;
  proxy::Client* client = nullptr;
};

AdcConfig medium_config() {
  AdcConfig config;
  config.single_table_size = 256;
  config.multiple_table_size = 256;
  config.caching_table_size = 64;
  return config;
}

TEST(Convergence, HotObjectReplicatesForLoadBalancing) {
  // One extremely hot object hammered from random entry proxies.  The
  // paper's design replicates frequently requested documents: every proxy
  // the backwarding path touches may cache it (Section III: "maintain
  // multiple copies of the frequently requested documents to balance the
  // user request load").
  Deployment d(5, std::vector<ObjectId>(400, 7), medium_config(), /*seed=*/3);
  d.run();

  int holders = 0;
  for (const AdcProxy* proxy : d.proxies) {
    if (proxy->is_locally_cached(7)) ++holders;
  }
  EXPECT_GE(holders, 2);

  // Every proxy knows the object, and each location is *valid*: either
  // THIS (the proxy serves it / terminates at origin) or a peer that
  // actually participates in serving it.
  for (const AdcProxy* proxy : d.proxies) {
    const auto location = proxy->tables().forward_location(7);
    ASSERT_TRUE(location.has_value()) << proxy->name();
    ASSERT_GE(*location, 0);
    ASSERT_LT(*location, 5);
  }
}

TEST(Convergence, SteadyStateServesHotObjectWithoutOrigin) {
  Deployment d(5, std::vector<ObjectId>(400, 7), medium_config(), /*seed=*/3);
  d.run();
  // The origin saw only the early learning journeys.
  EXPECT_LT(d.origin->requests_served(), 20u);
  EXPECT_GT(d.sim.metrics().summary().hit_rate(), 0.9);
}

TEST(Convergence, HotSetConvergesAcrossProxies) {
  // 10 hot objects, interleaved: each must end up cached somewhere, every
  // proxy must know every hot object, and the learned routing must make
  // the request stream almost entirely cache-served at steady state.
  std::vector<ObjectId> requests;
  for (int round = 0; round < 150; ++round) {
    for (ObjectId object = 1; object <= 10; ++object) requests.push_back(object);
  }
  Deployment d(5, requests, medium_config(), /*seed=*/5);
  d.run();

  for (ObjectId object = 1; object <= 10; ++object) {
    int holders = 0;
    int knowing = 0;
    for (const AdcProxy* proxy : d.proxies) {
      if (proxy->is_locally_cached(object)) ++holders;
      if (proxy->tables().forward_location(object).has_value()) ++knowing;
    }
    EXPECT_GE(holders, 1) << "object " << object;
    EXPECT_EQ(knowing, 5) << "object " << object;
  }
  // Self-organized routing works: the origin only saw the learning phase.
  EXPECT_GT(d.sim.metrics().summary().hit_rate(), 0.85);
}

TEST(Convergence, ColdObjectsDoNotEnterCaches) {
  // A pure one-timer stream: selective caching must keep every cache
  // empty (objects need repeat hits to be promoted).
  std::vector<ObjectId> requests;
  for (ObjectId object = 1; object <= 500; ++object) requests.push_back(object);
  Deployment d(3, requests, medium_config(), /*seed=*/7);
  d.run();
  for (const AdcProxy* proxy : d.proxies) {
    EXPECT_EQ(proxy->tables().caching().size(), 0u) << proxy->name();
  }
  EXPECT_EQ(d.sim.metrics().summary().hits, 0u);
  EXPECT_EQ(d.origin->requests_served(), 500u);
}

TEST(Convergence, LoadSpreadsAcrossProxiesUnderZipfMix) {
  workload::PolygraphConfig wc;
  wc.fill_requests = 1000;
  wc.phase2_requests = 3000;
  wc.phase3_requests = 2000;
  wc.hot_set_size = 200;
  wc.seed = 11;
  const auto trace = workload::generate_polygraph_trace(wc);
  Deployment d(5, trace.requests(), medium_config(), /*seed=*/11);
  d.run();

  std::uint64_t total = 0;
  std::uint64_t peak = 0;
  for (const AdcProxy* proxy : d.proxies) {
    total += proxy->stats().requests_received;
    peak = std::max(peak, proxy->stats().requests_received);
  }
  // No proxy carries more than ~2x its fair share.
  EXPECT_LT(static_cast<double>(peak) / static_cast<double>(total), 0.4);
}

}  // namespace
}  // namespace adc
