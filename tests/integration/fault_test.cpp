// Fault-injection coverage: a proxy cold-restart mid-run must never break
// correctness (every request still completes and conserves) and the
// system must visibly lose and then relearn state.
#include <gtest/gtest.h>

#include "driver/experiment.h"
#include "workload/polygraph.h"

namespace adc {
namespace {

workload::Trace fault_trace() {
  workload::PolygraphConfig config;
  config.fill_requests = 1000;
  config.phase2_requests = 5000;
  config.phase3_requests = 4000;
  config.hot_set_size = 120;
  config.seed = 31;
  return workload::generate_polygraph_trace(config);
}

driver::ExperimentConfig faulty_config(driver::Scheme scheme, std::uint64_t at) {
  driver::ExperimentConfig config;
  config.scheme = scheme;
  config.proxies = 4;
  config.adc.single_table_size = 250;
  config.adc.multiple_table_size = 250;
  config.adc.caching_table_size = 120;
  config.ma_window = 250;
  config.sample_every = 250;
  config.fault.at_completed = at;
  config.fault.proxy_index = 1;
  return config;
}

class FaultTest : public ::testing::TestWithParam<driver::Scheme> {};

TEST_P(FaultTest, RunStillCompletesAndConserves) {
  const auto trace = fault_trace();
  const auto result = driver::run_experiment(faulty_config(GetParam(), trace.size() / 2), trace);
  EXPECT_EQ(result.summary.completed, trace.size());
  EXPECT_EQ(result.summary.hits + result.origin_served, trace.size());
}

TEST_P(FaultTest, FaultCostsHitsComparedToCleanRun) {
  const auto trace = fault_trace();
  driver::ExperimentConfig clean = faulty_config(GetParam(), trace.size() / 2);
  clean.fault.at_completed = 0;
  const auto faulty =
      driver::run_experiment(faulty_config(GetParam(), trace.size() / 2), trace);
  const auto baseline = driver::run_experiment(clean, trace);
  EXPECT_LT(faulty.summary.hits, baseline.summary.hits);
}

INSTANTIATE_TEST_SUITE_P(Schemes, FaultTest,
                         ::testing::Values(driver::Scheme::kAdc, driver::Scheme::kCarp,
                                           driver::Scheme::kHierarchical,
                                           driver::Scheme::kSoap),
                         [](const auto& info) {
                           return std::string(driver::scheme_name(info.param));
                         });

TEST(FaultRecovery, AdcDipsAgainstPairedCleanRunThenRecovers) {
  // ADC replicates hot objects, so losing one proxy's state produces only
  // a shallow dip — visible against the *paired* clean run (identical
  // workload and seed, no fault), and gone again by the end of the trace.
  const auto trace = fault_trace();
  const std::uint64_t at = trace.size() / 2;
  const auto faulty = driver::run_experiment(faulty_config(driver::Scheme::kAdc, at), trace);
  driver::ExperimentConfig clean_config = faulty_config(driver::Scheme::kAdc, at);
  clean_config.fault.at_completed = 0;
  const auto clean = driver::run_experiment(clean_config, trace);

  const auto mean_between = [](const driver::ExperimentResult& result, std::uint64_t begin,
                               std::uint64_t end) {
    double sum = 0.0;
    std::size_t n = 0;
    for (const auto& point : result.series) {
      if (point.requests > begin && point.requests <= end) {
        sum += point.hit_rate;
        ++n;
      }
    }
    return n == 0 ? 0.0 : sum / static_cast<double>(n);
  };

  const std::uint64_t w = 2000;
  const double dip_faulty = mean_between(faulty, at, at + w);
  const double dip_clean = mean_between(clean, at, at + w);
  EXPECT_LT(dip_faulty, dip_clean);  // the paired dip

  const double end_faulty = mean_between(faulty, trace.size() - w, trace.size());
  const double end_clean = mean_between(clean, trace.size() - w, trace.size());
  EXPECT_NEAR(end_faulty, end_clean, 0.03);  // recovered by the end
}

TEST(FaultRecovery, FlushedAdcProxyRelearns) {
  const auto trace = fault_trace();
  const auto result =
      driver::run_experiment(faulty_config(driver::Scheme::kAdc, trace.size() / 2), trace);
  // By the end of the run the flushed proxy participates again: it holds
  // cached objects and serves local hits.
  const auto& victim = result.proxies[1];
  EXPECT_GT(victim.cached_objects, 0u);
  EXPECT_GT(victim.table_entries, 0u);
}

TEST(FaultRecovery, FaultAfterLastRequestNeverFires) {
  const auto trace = fault_trace();
  driver::ExperimentConfig config = faulty_config(driver::Scheme::kAdc, trace.size() + 100);
  const auto with_unfired = driver::run_experiment(config, trace);
  config.fault.at_completed = 0;
  const auto clean = driver::run_experiment(config, trace);
  EXPECT_EQ(with_unfired.summary.hits, clean.summary.hits);
}

}  // namespace
}  // namespace adc
