// Integration coverage for the ablation switches: the variants must stay
// correct (conservation, termination) and move the metrics in the
// direction the paper's arguments predict.
#include <gtest/gtest.h>

#include "driver/experiment.h"
#include "workload/polygraph.h"

namespace adc {
namespace {

workload::Trace trace_for_ablations() {
  workload::PolygraphConfig config;
  config.fill_requests = 1500;
  config.phase2_requests = 3500;
  config.phase3_requests = 3000;
  config.hot_set_size = 300;
  config.seed = 21;
  return workload::generate_polygraph_trace(config);
}

driver::ExperimentConfig base_config() {
  driver::ExperimentConfig config;
  config.proxies = 5;
  config.adc.single_table_size = 250;
  config.adc.multiple_table_size = 250;
  config.adc.caching_table_size = 120;
  config.sample_every = 0;
  return config;
}

TEST(AblationSelectiveCaching, LruAllVariantStaysCorrect) {
  const auto trace = trace_for_ablations();
  driver::ExperimentConfig config = base_config();
  config.adc.selective_caching = false;
  const auto result = driver::run_experiment(config, trace);
  EXPECT_EQ(result.summary.completed, trace.size());
  EXPECT_EQ(result.summary.hits + result.origin_served, trace.size());
}

TEST(AblationSelectiveCaching, SelectiveBeatsAdmitAllOnPollutedStream) {
  // The stream mixes one-timers (25% of phase 2) with a hot set; admit-all
  // LRU caching lets the one-timers churn the caches, selective caching
  // does not (paper Section III.4).
  const auto trace = trace_for_ablations();
  driver::ExperimentConfig selective = base_config();
  driver::ExperimentConfig admit_all = base_config();
  admit_all.adc.selective_caching = false;
  const auto sel = driver::run_experiment(selective, trace);
  const auto lru = driver::run_experiment(admit_all, trace);
  EXPECT_GT(sel.summary.hit_rate(), lru.summary.hit_rate() - 0.02);
}

TEST(AblationBackwarding, EndpointOnlyVariantStaysCorrect) {
  const auto trace = trace_for_ablations();
  driver::ExperimentConfig config = base_config();
  config.adc.backward_multicast = false;
  const auto result = driver::run_experiment(config, trace);
  EXPECT_EQ(result.summary.completed, trace.size());
  EXPECT_EQ(result.summary.hits + result.origin_served, trace.size());
}

TEST(AblationBackwarding, MulticastLearnsMoreLocations) {
  const auto trace = trace_for_ablations();
  driver::ExperimentConfig on = base_config();
  driver::ExperimentConfig off = base_config();
  off.adc.backward_multicast = false;
  const auto with_multicast = driver::run_experiment(on, trace);
  const auto without = driver::run_experiment(off, trace);
  EXPECT_GT(with_multicast.adc_totals.forwards_learned, without.adc_totals.forwards_learned);
}

TEST(AblationTableImpl, FaithfulAndIndexedProduceIdenticalResults) {
  const auto trace = trace_for_ablations();
  driver::ExperimentConfig faithful = base_config();
  faithful.adc.table_impl = cache::TableImpl::kFaithful;
  driver::ExperimentConfig indexed = base_config();
  indexed.adc.table_impl = cache::TableImpl::kIndexed;
  const auto a = driver::run_experiment(faithful, trace);
  const auto b = driver::run_experiment(indexed, trace);
  EXPECT_EQ(a.summary.hits, b.summary.hits);
  EXPECT_EQ(a.summary.total_hops, b.summary.total_hops);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.origin_served, b.origin_served);
}

TEST(AblationMaxForwards, TinyBoundStillTerminatesEverything) {
  const auto trace = trace_for_ablations();
  driver::ExperimentConfig config = base_config();
  config.adc.max_forwards = 1;
  const auto result = driver::run_experiment(config, trace);
  EXPECT_EQ(result.summary.completed, trace.size());
  EXPECT_EQ(result.summary.hits + result.origin_served, trace.size());
  // With at most one forward, hops per journey are tightly bounded:
  // client + forward + origin + backward path <= 8.
  EXPECT_LE(result.summary.avg_hops(), 8.0);
}

TEST(AblationMaxForwards, LargerBoundRaisesHops) {
  const auto trace = trace_for_ablations();
  driver::ExperimentConfig tight = base_config();
  tight.adc.max_forwards = 1;
  driver::ExperimentConfig loose = base_config();
  loose.adc.max_forwards = 8;
  const auto a = driver::run_experiment(tight, trace);
  const auto b = driver::run_experiment(loose, trace);
  EXPECT_GT(b.summary.avg_hops(), a.summary.avg_hops());
}

}  // namespace
}  // namespace adc
