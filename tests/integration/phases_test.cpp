// Integration tests of the full pipeline (workload -> driver -> metrics)
// around the paper's three-phase methodology.
#include <gtest/gtest.h>

#include "driver/experiment.h"
#include "workload/polygraph.h"

namespace adc {
namespace {

workload::Trace phased_trace() {
  workload::PolygraphConfig config;
  config.fill_requests = 2000;
  config.phase2_requests = 3000;
  config.phase3_requests = 2500;
  config.hot_set_size = 150;
  config.seed = 17;
  return workload::generate_polygraph_trace(config);
}

driver::ExperimentConfig adc_config() {
  driver::ExperimentConfig config;
  config.proxies = 5;
  config.adc.single_table_size = 300;
  config.adc.multiple_table_size = 300;
  config.adc.caching_table_size = 150;
  config.ma_window = 250;
  config.sample_every = 250;
  return config;
}

double mean_hit_rate(const std::vector<sim::SeriesPoint>& series, std::uint64_t begin,
                     std::uint64_t end) {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& point : series) {
    if (point.requests > begin && point.requests <= end) {
      sum += point.hit_rate;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

TEST(Phases, FillPhaseHasNearZeroHitRate) {
  const auto trace = phased_trace();
  const auto result = driver::run_experiment(adc_config(), trace);
  const double fill = mean_hit_rate(result.series, 0, trace.phases().fill_end);
  EXPECT_LT(fill, 0.08);
}

TEST(Phases, RequestPhaseLiftsHitRateSharply) {
  const auto trace = phased_trace();
  const auto result = driver::run_experiment(adc_config(), trace);
  const double fill = mean_hit_rate(result.series, 0, trace.phases().fill_end);
  const double request_phase =
      mean_hit_rate(result.series, trace.phases().fill_end, trace.phases().phase2_end);
  EXPECT_GT(request_phase, fill + 0.2);
}

TEST(Phases, RepeatPhaseAtLeastSustainsHitRate) {
  const auto trace = phased_trace();
  const auto result = driver::run_experiment(adc_config(), trace);
  const double phase2 =
      mean_hit_rate(result.series, trace.phases().fill_end, trace.phases().phase2_end);
  const double phase3 = mean_hit_rate(result.series, trace.phases().phase2_end, trace.size());
  EXPECT_GT(phase3, phase2 - 0.05);
}

TEST(Phases, CarpShowsTheSamePhaseStructure) {
  const auto trace = phased_trace();
  driver::ExperimentConfig config = adc_config();
  config.scheme = driver::Scheme::kCarp;
  const auto result = driver::run_experiment(config, trace);
  const double fill = mean_hit_rate(result.series, 0, trace.phases().fill_end);
  const double steady =
      mean_hit_rate(result.series, trace.phases().fill_end, trace.size());
  EXPECT_LT(fill, 0.1);
  EXPECT_GT(steady, fill + 0.2);
}

TEST(Phases, AdcCompetesWithCarpAtSteadyState) {
  // The paper's headline: after learning, ADC competes with hashing.  We
  // assert the steady-state gap stays within a few points either way.
  const auto trace = phased_trace();
  driver::ExperimentConfig adc = adc_config();
  driver::ExperimentConfig carp = adc;
  carp.scheme = driver::Scheme::kCarp;
  const auto adc_result = driver::run_experiment(adc, trace);
  const auto carp_result = driver::run_experiment(carp, trace);
  const double adc_steady =
      mean_hit_rate(adc_result.series, trace.phases().phase2_end, trace.size());
  const double carp_steady =
      mean_hit_rate(carp_result.series, trace.phases().phase2_end, trace.size());
  EXPECT_NEAR(adc_steady, carp_steady, 0.12);
}

TEST(Phases, AdcNeedsMoreHopsThanCarp) {
  // Figure 12's qualitative claim: ADC pays extra hops for its search.
  const auto trace = phased_trace();
  driver::ExperimentConfig adc = adc_config();
  driver::ExperimentConfig carp = adc;
  carp.scheme = driver::Scheme::kCarp;
  const auto adc_result = driver::run_experiment(adc, trace);
  const auto carp_result = driver::run_experiment(carp, trace);
  EXPECT_GT(adc_result.summary.avg_hops(), carp_result.summary.avg_hops() + 0.5);
  EXPECT_LT(adc_result.summary.avg_hops(), carp_result.summary.avg_hops() + 5.0);
}

}  // namespace
}  // namespace adc
