// Seed-parameterized property suite: the system-level invariants that must
// hold for ANY seed and any workload — conservation, termination, pending
// drain, bounded tables, deterministic replay.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/adc_proxy.h"
#include "proxy/client.h"
#include "proxy/origin_server.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace adc {
namespace {

using core::AdcConfig;
using core::AdcProxy;

struct Deployment {
  Deployment(int n, std::vector<ObjectId> requests, const AdcConfig& config,
             std::uint64_t seed, int concurrency = 1)
      : sim(seed), stream(std::move(requests)) {
    std::vector<NodeId> ids;
    for (int i = 0; i < n; ++i) ids.push_back(i);
    const NodeId origin_id = n;
    for (int i = 0; i < n; ++i) {
      auto node = std::make_unique<AdcProxy>(i, "proxy[" + std::to_string(i) + "]", config,
                                             ids, origin_id);
      proxies.push_back(node.get());
      sim.add_node(std::move(node));
    }
    auto origin_node = std::make_unique<proxy::OriginServer>(origin_id, "origin");
    origin = origin_node.get();
    sim.add_node(std::move(origin_node));
    auto client_node = std::make_unique<proxy::Client>(
        n + 1, "client", stream, ids, proxy::EntryPolicy::kRandom, concurrency);
    client = client_node.get();
    sim.add_node(std::move(client_node));
  }

  void run() {
    client->start(sim);
    sim.run();
  }

  sim::Simulator sim;
  proxy::VectorStream stream;
  std::vector<AdcProxy*> proxies;
  proxy::OriginServer* origin = nullptr;
  proxy::Client* client = nullptr;
};

std::vector<ObjectId> random_trace(std::uint64_t seed, std::size_t length,
                                   std::size_t universe) {
  util::Rng rng(seed);
  const util::ZipfSampler zipf(universe, 0.9);
  std::vector<ObjectId> requests;
  requests.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    if (rng.chance(0.3)) {
      requests.push_back(100000 + i);  // one-timer
    } else {
      requests.push_back(static_cast<ObjectId>(zipf.sample(rng)));
    }
  }
  return requests;
}

class AdcPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static AdcConfig tiny_config() {
    AdcConfig config;
    config.single_table_size = 40;
    config.multiple_table_size = 30;
    config.caching_table_size = 12;
    return config;
  }
};

TEST_P(AdcPropertyTest, EveryRequestCompletesExactlyOnce) {
  const auto seed = GetParam();
  Deployment d(4, random_trace(seed, 2000, 300), tiny_config(), seed);
  d.run();
  EXPECT_TRUE(d.client->drained());
  const auto& summary = d.sim.metrics().summary();
  EXPECT_EQ(summary.completed, 2000u);
  EXPECT_EQ(summary.hits + d.origin->requests_served(), 2000u);
}

TEST_P(AdcPropertyTest, PendingTablesDrainAndCapacitiesHold) {
  const auto seed = GetParam();
  const AdcConfig config = tiny_config();
  Deployment d(4, random_trace(seed, 2000, 300), config, seed);
  d.run();
  for (const AdcProxy* proxy : d.proxies) {
    EXPECT_EQ(proxy->pending_backwards(), 0u) << proxy->name();
    EXPECT_LE(proxy->tables().single().size(), config.single_table_size);
    EXPECT_LE(proxy->tables().multiple().size(), config.multiple_table_size);
    EXPECT_LE(proxy->tables().caching().size(), config.caching_table_size);
  }
}

TEST_P(AdcPropertyTest, ConcurrencyPreservesConservation) {
  const auto seed = GetParam();
  Deployment d(4, random_trace(seed, 2000, 300), tiny_config(), seed, /*concurrency=*/6);
  d.run();
  EXPECT_TRUE(d.client->drained());
  const auto& summary = d.sim.metrics().summary();
  EXPECT_EQ(summary.completed, 2000u);
  EXPECT_EQ(summary.hits + d.origin->requests_served(), 2000u);
}

TEST_P(AdcPropertyTest, ReplayIsBitIdentical) {
  const auto seed = GetParam();
  const auto requests = random_trace(seed, 1500, 250);
  Deployment a(3, requests, tiny_config(), seed);
  Deployment b(3, requests, tiny_config(), seed);
  a.run();
  b.run();
  EXPECT_EQ(a.sim.metrics().summary().hits, b.sim.metrics().summary().hits);
  EXPECT_EQ(a.sim.metrics().summary().total_hops, b.sim.metrics().summary().total_hops);
  EXPECT_EQ(a.sim.now(), b.sim.now());
  EXPECT_EQ(a.sim.messages_delivered(), b.sim.messages_delivered());
  for (std::size_t i = 0; i < a.proxies.size(); ++i) {
    EXPECT_EQ(a.proxies[i]->local_time(), b.proxies[i]->local_time());
    EXPECT_EQ(a.proxies[i]->tables().total_entries(),
              b.proxies[i]->tables().total_entries());
  }
}

TEST_P(AdcPropertyTest, HopsAreBoundedByForwardLimit) {
  const auto seed = GetParam();
  AdcConfig config = tiny_config();
  config.max_forwards = 3;
  Deployment d(5, random_trace(seed, 1000, 200), config, seed);
  d.run();
  // Worst case journey: client hop + (max_forwards + 1 terminal hop to the
  // origin) forward hops + the same backward, + client delivery.
  const double bound = 2.0 * (config.max_forwards + 2);
  EXPECT_LE(d.sim.metrics().summary().avg_hops(), bound);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdcPropertyTest,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u, 31415926u));

}  // namespace
}  // namespace adc
