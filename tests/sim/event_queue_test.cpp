#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace adc::sim {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue queue;
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_EQ(queue.next_time(), kSimTimeMax);
}

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(30, [&order] { order.push_back(3); });
  queue.schedule(10, [&order] { order.push_back(1); });
  queue.schedule(20, [&order] { order.push_back(2); });
  while (!queue.empty()) queue.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesRunInSchedulingOrder) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.schedule(5, [&order, i] { order.push_back(i); });
  }
  while (!queue.empty()) queue.run_next();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, RunNextReturnsEventTime) {
  EventQueue queue;
  queue.schedule(42, [] {});
  EXPECT_EQ(queue.next_time(), 42);
  EXPECT_EQ(queue.run_next(), 42);
}

TEST(EventQueue, PopNextDoesNotRun) {
  EventQueue queue;
  bool ran = false;
  queue.schedule(7, [&ran] { ran = true; });
  auto popped = queue.pop_next();
  EXPECT_EQ(popped.time, 7);
  EXPECT_FALSE(ran);
  popped.action();
  EXPECT_TRUE(ran);
}

TEST(EventQueue, EventsCanScheduleMoreEvents) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(1, [&] {
    order.push_back(1);
    queue.schedule(3, [&order] { order.push_back(3); });
  });
  queue.schedule(2, [&order] { order.push_back(2); });
  while (!queue.empty()) queue.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, ExecutedCounter) {
  EventQueue queue;
  for (int i = 0; i < 5; ++i) queue.schedule(i, [] {});
  while (!queue.empty()) queue.run_next();
  EXPECT_EQ(queue.executed(), 5u);
}

TEST(EventQueue, InterleavedScheduleAndRun) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(10, [&order] { order.push_back(10); });
  queue.run_next();
  queue.schedule(15, [&order] { order.push_back(15); });
  queue.schedule(12, [&order] { order.push_back(12); });
  while (!queue.empty()) queue.run_next();
  EXPECT_EQ(order, (std::vector<int>{10, 12, 15}));
}

}  // namespace
}  // namespace adc::sim
