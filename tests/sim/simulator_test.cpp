#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace adc::sim {
namespace {

/// Records deliveries; optionally echoes every request back as a reply.
class RecorderNode final : public Node {
 public:
  RecorderNode(NodeId id, NodeKind kind, std::string name, bool echo = false)
      : Node(id, kind, std::move(name)), echo_(echo) {}

  void on_message(Transport& net, const Message& msg) override {
    received.push_back(msg);
    receive_times.push_back(net.now());
    if (echo_ && msg.kind == MessageKind::kRequest) {
      Message reply = msg;
      reply.kind = MessageKind::kReply;
      reply.sender = id();
      reply.target = msg.sender;
      net.send(std::move(reply));
    }
  }

  std::vector<Message> received;
  std::vector<SimTime> receive_times;

 private:
  bool echo_;
};

TEST(Simulator, AssignsSequentialNodeIds) {
  Simulator sim;
  const NodeId a = sim.add_node(std::make_unique<RecorderNode>(0, NodeKind::kProxy, "a"));
  const NodeId b = sim.add_node(std::make_unique<RecorderNode>(1, NodeKind::kProxy, "b"));
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(sim.node_count(), 2u);
  EXPECT_EQ(sim.node(0).name(), "a");
}

TEST(Simulator, SendIncrementsHops) {
  Simulator sim;
  sim.add_node(std::make_unique<RecorderNode>(0, NodeKind::kProxy, "a"));
  auto* b = new RecorderNode(1, NodeKind::kProxy, "b");
  sim.add_node(std::unique_ptr<Node>(b));

  Message msg;
  msg.sender = 0;
  msg.target = 1;
  msg.hops = 3;
  sim.send(msg);
  sim.run();
  ASSERT_EQ(b->received.size(), 1u);
  EXPECT_EQ(b->received[0].hops, 4);
}

TEST(Simulator, LatencyDependsOnNodeKinds) {
  LatencyModel latency;
  latency.client_proxy = 1;
  latency.proxy_proxy = 2;
  latency.proxy_origin = 10;
  Simulator sim(1, latency);
  auto* client = new RecorderNode(0, NodeKind::kClient, "c");
  auto* proxy = new RecorderNode(1, NodeKind::kProxy, "p");
  auto* origin = new RecorderNode(2, NodeKind::kOrigin, "o");
  sim.add_node(std::unique_ptr<Node>(client));
  sim.add_node(std::unique_ptr<Node>(proxy));
  sim.add_node(std::unique_ptr<Node>(origin));

  Message m;
  m.sender = 0;
  m.target = 1;  // client -> proxy: 1
  sim.send(m);
  m.sender = 1;
  m.target = 2;  // proxy -> origin: 10
  sim.send(m);
  sim.run();
  ASSERT_EQ(proxy->receive_times.size(), 1u);
  EXPECT_EQ(proxy->receive_times[0], 1);
  ASSERT_EQ(origin->receive_times.size(), 1u);
  EXPECT_EQ(origin->receive_times[0], 10);
}

TEST(Simulator, SelfMessageUsesSelfLatency) {
  LatencyModel latency;
  latency.proxy_proxy = 5;
  latency.self = 1;
  Simulator sim(1, latency);
  auto* p = new RecorderNode(0, NodeKind::kProxy, "p");
  sim.add_node(std::unique_ptr<Node>(p));

  Message m;
  m.sender = 0;
  m.target = 0;
  sim.send(m);
  sim.run();
  ASSERT_EQ(p->receive_times.size(), 1u);
  EXPECT_EQ(p->receive_times[0], 1);
}

TEST(Simulator, ClockIsCorrectDuringNestedSends) {
  // A node reacting to a delivery at t must schedule follow-ups relative
  // to t, not to a stale clock.
  Simulator sim;
  auto* a = new RecorderNode(0, NodeKind::kProxy, "a", /*echo=*/true);
  auto* b = new RecorderNode(1, NodeKind::kProxy, "b");
  sim.add_node(std::unique_ptr<Node>(a));
  sim.add_node(std::unique_ptr<Node>(b));

  Message m;
  m.kind = MessageKind::kRequest;
  m.sender = 1;
  m.target = 0;
  sim.send(m);  // arrives at a @2 (proxy-proxy), echo arrives at b @4
  sim.run();
  ASSERT_EQ(b->receive_times.size(), 1u);
  EXPECT_EQ(b->receive_times[0], 4);
}

TEST(Simulator, RunReturnsEventCount) {
  Simulator sim;
  sim.add_node(std::make_unique<RecorderNode>(0, NodeKind::kProxy, "a"));
  sim.schedule(1, [] {});
  sim.schedule(2, [] {});
  EXPECT_EQ(sim.run(), 2u);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, RunRespectsMaxEvents) {
  Simulator sim;
  sim.add_node(std::make_unique<RecorderNode>(0, NodeKind::kProxy, "a"));
  for (int i = 0; i < 5; ++i) sim.schedule(i + 1, [] {});
  EXPECT_EQ(sim.run(3), 3u);
  EXPECT_FALSE(sim.idle());
  EXPECT_EQ(sim.run(), 2u);
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator sim;
  sim.add_node(std::make_unique<RecorderNode>(0, NodeKind::kProxy, "a"));
  SimTime fired_at = -1;
  sim.schedule(10, [&] { sim.schedule_after(5, [&] { fired_at = sim.now(); }); });
  sim.run();
  EXPECT_EQ(fired_at, 15);
}

TEST(Simulator, MessageCountersTrack) {
  Simulator sim;
  sim.add_node(std::make_unique<RecorderNode>(0, NodeKind::kProxy, "a"));
  sim.add_node(std::make_unique<RecorderNode>(1, NodeKind::kProxy, "b"));
  Message m;
  m.sender = 0;
  m.target = 1;
  sim.send(m);
  sim.send(m);
  sim.run();
  EXPECT_EQ(sim.network().messages_sent(), 2u);
  EXPECT_EQ(sim.messages_delivered(), 2u);
}

TEST(Simulator, NodeDelaySlowsDelivery) {
  Simulator sim;
  auto* a = new RecorderNode(0, NodeKind::kProxy, "a");
  auto* b = new RecorderNode(1, NodeKind::kProxy, "b");
  sim.add_node(std::unique_ptr<Node>(a));
  sim.add_node(std::unique_ptr<Node>(b));
  sim.network().set_node_delay(1, 7);

  Message m;
  m.sender = 0;
  m.target = 1;
  sim.send(m);  // proxy-proxy latency 2 + node delay 7
  m.sender = 1;
  m.target = 0;
  sim.send(m);  // reverse direction: only latency 2
  sim.run();
  ASSERT_EQ(b->receive_times.size(), 1u);
  EXPECT_EQ(b->receive_times[0], 9);
  ASSERT_EQ(a->receive_times.size(), 1u);
  EXPECT_EQ(a->receive_times[0], 2);
}

TEST(Simulator, SameSeedSameRngStream) {
  Simulator a(99);
  Simulator b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.rng().next(), b.rng().next());
}

}  // namespace
}  // namespace adc::sim
