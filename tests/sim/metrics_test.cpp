#include "sim/metrics.h"

#include <gtest/gtest.h>

namespace adc::sim {
namespace {

TEST(MovingAverage, EmptyIsZero) {
  MovingAverage ma(5);
  EXPECT_EQ(ma.value(), 0.0);
  EXPECT_EQ(ma.count(), 0u);
}

TEST(MovingAverage, AveragesWithinWindow) {
  MovingAverage ma(5);
  ma.add(1.0);
  ma.add(2.0);
  ma.add(3.0);
  EXPECT_DOUBLE_EQ(ma.value(), 2.0);
  EXPECT_EQ(ma.count(), 3u);
}

TEST(MovingAverage, OldValuesFallOut) {
  MovingAverage ma(3);
  for (double v : {10.0, 20.0, 30.0, 40.0}) ma.add(v);
  EXPECT_DOUBLE_EQ(ma.value(), 30.0);  // (20+30+40)/3
  EXPECT_EQ(ma.count(), 3u);
}

TEST(MovingAverage, WindowOfOneTracksLast) {
  MovingAverage ma(1);
  ma.add(5.0);
  ma.add(9.0);
  EXPECT_DOUBLE_EQ(ma.value(), 9.0);
}

TEST(Metrics, SummaryAccumulates) {
  MetricsCollector metrics(100, 0);
  metrics.on_request_completed(true, 4, 10);
  metrics.on_request_completed(false, 6, 30);
  const auto& s = metrics.summary();
  EXPECT_EQ(s.completed, 2u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.total_hops, 10u);
  EXPECT_EQ(s.total_latency, 40);
  EXPECT_DOUBLE_EQ(s.hit_rate(), 0.5);
  EXPECT_DOUBLE_EQ(s.avg_hops(), 5.0);
  EXPECT_DOUBLE_EQ(s.avg_latency(), 20.0);
}

TEST(Metrics, EmptySummaryRatesAreZero) {
  const MetricsSummary s;
  EXPECT_EQ(s.hit_rate(), 0.0);
  EXPECT_EQ(s.avg_hops(), 0.0);
  EXPECT_EQ(s.avg_latency(), 0.0);
}

TEST(Metrics, SeriesSamplesAtStride) {
  MetricsCollector metrics(10, 3);
  for (int i = 0; i < 10; ++i) metrics.on_request_completed(i % 2 == 0, 5, 1);
  // Samples at 3, 6, 9 completed requests.
  ASSERT_EQ(metrics.series().size(), 3u);
  EXPECT_EQ(metrics.series()[0].requests, 3u);
  EXPECT_EQ(metrics.series()[1].requests, 6u);
  EXPECT_EQ(metrics.series()[2].requests, 9u);
}

TEST(Metrics, SeriesDisabledWithZeroStride) {
  MetricsCollector metrics(10, 0);
  for (int i = 0; i < 10; ++i) metrics.on_request_completed(true, 1, 1);
  EXPECT_TRUE(metrics.series().empty());
}

TEST(Metrics, MovingHitRateReflectsWindow) {
  MetricsCollector metrics(4, 0);
  for (int i = 0; i < 4; ++i) metrics.on_request_completed(false, 1, 1);
  EXPECT_DOUBLE_EQ(metrics.moving_hit_rate(), 0.0);
  for (int i = 0; i < 4; ++i) metrics.on_request_completed(true, 1, 1);
  EXPECT_DOUBLE_EQ(metrics.moving_hit_rate(), 1.0);  // window fully displaced
}

TEST(IntHistogram, EmptyState) {
  const IntHistogram hist;
  EXPECT_EQ(hist.total(), 0u);
  EXPECT_EQ(hist.percentile(0.5), -1);
  EXPECT_EQ(hist.max_seen(), -1);
  EXPECT_EQ(hist.mean(), 0.0);
}

TEST(IntHistogram, CountsAndMean) {
  IntHistogram hist;
  for (int v : {2, 2, 4, 8}) hist.add(v);
  EXPECT_EQ(hist.total(), 4u);
  EXPECT_EQ(hist.count_of(2), 2u);
  EXPECT_EQ(hist.count_of(4), 1u);
  EXPECT_EQ(hist.count_of(3), 0u);
  EXPECT_DOUBLE_EQ(hist.mean(), 4.0);
  EXPECT_EQ(hist.max_seen(), 8);
}

TEST(IntHistogram, Percentiles) {
  IntHistogram hist(200);
  for (int v = 1; v <= 100; ++v) hist.add(v);  // uniform 1..100
  EXPECT_EQ(hist.percentile(0.0), 1);
  EXPECT_EQ(hist.percentile(0.5), 50);
  EXPECT_EQ(hist.percentile(0.95), 95);
  EXPECT_EQ(hist.percentile(1.0), 100);
}

TEST(IntHistogram, SingleValue) {
  IntHistogram hist;
  hist.add(7);
  EXPECT_EQ(hist.percentile(0.01), 7);
  EXPECT_EQ(hist.percentile(0.99), 7);
}

TEST(IntHistogram, OverflowBucket) {
  IntHistogram hist(8);
  hist.add(100);
  hist.add(200);
  EXPECT_EQ(hist.overflow(), 2u);
  EXPECT_EQ(hist.max_seen(), 200);
  // Percentile reports the overflow bucket boundary for overflowed mass.
  EXPECT_EQ(hist.percentile(0.5), 9);
}

TEST(IntHistogram, NegativeClampsToZero) {
  IntHistogram hist;
  hist.add(-5);
  EXPECT_EQ(hist.count_of(0), 1u);
}

TEST(Metrics, HopHistogramTracksRequests) {
  MetricsCollector metrics(10, 0);
  metrics.on_request_completed(true, 2, 1);
  metrics.on_request_completed(false, 6, 1);
  metrics.on_request_completed(false, 6, 1);
  EXPECT_EQ(metrics.hop_histogram().total(), 3u);
  EXPECT_EQ(metrics.hop_histogram().count_of(6), 2u);
  EXPECT_EQ(metrics.hop_histogram().percentile(0.5), 6);
}

TEST(Metrics, ResetClearsEverything) {
  MetricsCollector metrics(4, 1);
  metrics.on_request_completed(true, 3, 7);
  metrics.reset();
  EXPECT_EQ(metrics.summary().completed, 0u);
  EXPECT_TRUE(metrics.series().empty());
  EXPECT_EQ(metrics.moving_hit_rate(), 0.0);
  EXPECT_EQ(metrics.hop_histogram().total(), 0u);
  // Window width survives the reset.
  metrics.on_request_completed(true, 3, 7);
  EXPECT_EQ(metrics.summary().completed, 1u);
}

TEST(PercentileTracker, EmptyIsZero) {
  PercentileTracker tracker;
  EXPECT_EQ(tracker.percentile(0.5), 0.0);
  EXPECT_EQ(tracker.count(), 0u);
}

TEST(PercentileTracker, NearestRankMatchesDefinition) {
  PercentileTracker tracker;
  for (int v = 1; v <= 100; ++v) tracker.add(static_cast<double>(v));
  EXPECT_EQ(tracker.percentile(0.0), 1.0);
  EXPECT_EQ(tracker.percentile(0.50), 50.0);
  EXPECT_EQ(tracker.percentile(0.95), 95.0);
  EXPECT_EQ(tracker.percentile(0.99), 99.0);
  EXPECT_EQ(tracker.percentile(1.0), 100.0);
}

TEST(PercentileTracker, OrderIndependentBelowCap) {
  PercentileTracker ascending;
  PercentileTracker descending;
  PercentileTracker interleaved;
  for (int v = 0; v < 1000; ++v) {
    ascending.add(static_cast<double>(v));
    descending.add(static_cast<double>(999 - v));
    interleaved.add(static_cast<double>((v * 7919) % 1000));  // a permutation
  }
  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    EXPECT_EQ(ascending.percentile(q), descending.percentile(q)) << q;
    EXPECT_EQ(ascending.percentile(q), interleaved.percentile(q)) << q;
  }
}

TEST(PercentileTracker, SingleSampleAnswersEveryQuantile) {
  PercentileTracker tracker;
  tracker.add(7.0);
  // With one sample every rank clamps to it — tails included.
  for (const double q : {0.0, 0.5, 0.95, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(tracker.percentile(q), 7.0) << q;
  }
}

TEST(PercentileTracker, TailQuantilesBelowHundredSamplesHitTheMaximum) {
  // Nearest-rank with n < 100: ceil(0.99 * n) == n, so p99 and p99.9 must
  // return the maximum, never interpolate past it or fall a rank short.
  for (const int n : {2, 10, 50, 99}) {
    PercentileTracker tracker;
    for (int v = 1; v <= n; ++v) tracker.add(static_cast<double>(v));
    EXPECT_EQ(tracker.percentile(0.99), static_cast<double>(n)) << n;
    EXPECT_EQ(tracker.percentile(0.999), static_cast<double>(n)) << n;
  }
  // At exactly n == 100, p99 steps off the maximum onto rank 99.
  PercentileTracker hundred;
  for (int v = 1; v <= 100; ++v) hundred.add(static_cast<double>(v));
  EXPECT_EQ(hundred.percentile(0.99), 99.0);
  EXPECT_EQ(hundred.percentile(0.999), 100.0);
}

TEST(PercentileTracker, TiedSamplesKeepNearestRankSemantics) {
  PercentileTracker tracker;
  tracker.add(1.0);
  tracker.add(1.0);
  tracker.add(1.0);
  tracker.add(5.0);
  // Ranks 1..3 are the tie; only the top rank sees the outlier.
  EXPECT_EQ(tracker.percentile(0.50), 1.0);
  EXPECT_EQ(tracker.percentile(0.75), 1.0);
  EXPECT_EQ(tracker.percentile(0.99), 5.0);
  EXPECT_EQ(tracker.percentile(1.0), 5.0);
}

TEST(PercentileTracker, DecimationBoundsMemoryAndStaysDeterministic) {
  PercentileTracker a(64);
  PercentileTracker b(64);
  for (int v = 0; v < 10000; ++v) {
    a.add(static_cast<double>(v % 977));
    b.add(static_cast<double>(v % 977));
  }
  EXPECT_EQ(a.count(), 10000u);
  EXPECT_LE(a.stored(), 64u);
  EXPECT_GT(a.stride(), 1u);
  // Same input sequence, same estimate — bit-identical.
  for (const double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_EQ(a.percentile(q), b.percentile(q)) << q;
  }
  // The decimated estimate still tracks the true distribution.
  EXPECT_NEAR(a.percentile(0.5), 977 / 2.0, 977 * 0.15);
}

TEST(PercentileTracker, ClearResetsEverything) {
  PercentileTracker tracker(8);
  for (int v = 0; v < 100; ++v) tracker.add(v);
  tracker.clear();
  EXPECT_EQ(tracker.count(), 0u);
  EXPECT_EQ(tracker.stored(), 0u);
  EXPECT_EQ(tracker.stride(), 1u);
  EXPECT_EQ(tracker.percentile(0.5), 0.0);
}

TEST(Fairness, RatioIsMaxOverMin) {
  EXPECT_DOUBLE_EQ(MetricsSummary::fairness_ratio({100, 100, 100}), 1.0);
  EXPECT_DOUBLE_EQ(MetricsSummary::fairness_ratio({50, 100, 200}), 4.0);
  EXPECT_DOUBLE_EQ(MetricsSummary::fairness_ratio({7}), 1.0);
}

TEST(Fairness, EdgeCases) {
  EXPECT_DOUBLE_EQ(MetricsSummary::fairness_ratio({}), 0.0);
  // Nobody served anything: trivially balanced, not infinite.
  EXPECT_DOUBLE_EQ(MetricsSummary::fairness_ratio({0, 0, 0}), 1.0);
  // A starved member clamps the denominator to 1 instead of dividing by 0.
  EXPECT_DOUBLE_EQ(MetricsSummary::fairness_ratio({0, 500}), 500.0);
}

TEST(Fairness, MaxShare) {
  EXPECT_DOUBLE_EQ(MetricsSummary::max_share({}), 0.0);
  EXPECT_DOUBLE_EQ(MetricsSummary::max_share({0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(MetricsSummary::max_share({25, 25, 50}), 0.5);
  EXPECT_DOUBLE_EQ(MetricsSummary::max_share({10}), 1.0);
}

TEST(Fairness, SummaryAccessorsUseOwnerCounters) {
  MetricsSummary summary;
  EXPECT_DOUBLE_EQ(summary.request_fairness(), 0.0);  // no owners recorded
  summary.owner_requests = {10, 20, 40};
  summary.owner_hits = {5, 5, 5};
  EXPECT_DOUBLE_EQ(summary.request_fairness(), 4.0);
  EXPECT_DOUBLE_EQ(summary.hit_fairness(), 1.0);
}

TEST(PercentileTracker, TailPercentilesNearestRank) {
  PercentileTracker tracker;
  for (int v = 1; v <= 1000; ++v) tracker.add(v);
  // Nearest-rank on 1000 samples: p99 = ceil(0.99*1000) = 990th value.
  EXPECT_EQ(tracker.percentile(0.99), 990.0);
  EXPECT_EQ(tracker.percentile(0.999), 999.0);
}

TEST(MetricsCollector, LatencyTrackerFollowsCompletions) {
  MetricsCollector metrics(10, 0);
  metrics.on_request_completed(true, 2, 5);
  metrics.on_request_completed(false, 3, 15);
  metrics.on_request_completed(true, 4, 10);
  EXPECT_EQ(metrics.latency_tracker().count(), 3u);
  EXPECT_EQ(metrics.latency_tracker().percentile(0.5), 10.0);
  metrics.reset();
  EXPECT_EQ(metrics.latency_tracker().count(), 0u);
}

}  // namespace
}  // namespace adc::sim
