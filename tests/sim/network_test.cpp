#include "sim/network.h"

#include <gtest/gtest.h>

namespace adc::sim {
namespace {

TEST(Network, DefaultLatencies) {
  const Network net;
  EXPECT_EQ(net.latency(NodeKind::kClient, NodeKind::kProxy, false), 1);
  EXPECT_EQ(net.latency(NodeKind::kProxy, NodeKind::kClient, false), 1);
  EXPECT_EQ(net.latency(NodeKind::kProxy, NodeKind::kProxy, false), 2);
  EXPECT_EQ(net.latency(NodeKind::kProxy, NodeKind::kOrigin, false), 10);
  EXPECT_EQ(net.latency(NodeKind::kOrigin, NodeKind::kProxy, false), 10);
}

TEST(Network, SelfMessagesShortCircuit) {
  const Network net;
  EXPECT_EQ(net.latency(NodeKind::kProxy, NodeKind::kProxy, true), 1);
}

TEST(Network, CustomModel) {
  LatencyModel model;
  model.client_proxy = 3;
  model.proxy_proxy = 7;
  model.proxy_origin = 50;
  model.self = 2;
  const Network net(model);
  EXPECT_EQ(net.latency(NodeKind::kClient, NodeKind::kProxy, false), 3);
  EXPECT_EQ(net.latency(NodeKind::kProxy, NodeKind::kProxy, false), 7);
  EXPECT_EQ(net.latency(NodeKind::kOrigin, NodeKind::kProxy, false), 50);
  EXPECT_EQ(net.latency(NodeKind::kProxy, NodeKind::kProxy, true), 2);
}

TEST(Network, OriginDominatesClient) {
  // A client-origin link (not used by any scheme, but defined) rates as an
  // origin link.
  const Network net;
  EXPECT_EQ(net.latency(NodeKind::kClient, NodeKind::kOrigin, false), 10);
}

TEST(Network, MessageCounter) {
  Network net;
  EXPECT_EQ(net.messages_sent(), 0u);
  net.count_message();
  net.count_message();
  EXPECT_EQ(net.messages_sent(), 2u);
}

TEST(Network, NodeDelayDefaultsToZero) {
  const Network net;
  EXPECT_EQ(net.node_delay(0), 0);
  EXPECT_EQ(net.node_delay(99), 0);
}

TEST(Network, NodeDelaySetAndClear) {
  Network net;
  net.set_node_delay(3, 20);
  EXPECT_EQ(net.node_delay(3), 20);
  EXPECT_EQ(net.node_delay(2), 0);
  net.set_node_delay(3, 0);  // zero clears
  EXPECT_EQ(net.node_delay(3), 0);
  net.set_node_delay(3, -5);  // negative treated as clear
  EXPECT_EQ(net.node_delay(3), 0);
}

}  // namespace
}  // namespace adc::sim
