#include "sim/version.h"

#include <gtest/gtest.h>

namespace adc::sim {
namespace {

TEST(VersionOracle, DisabledStaysAtZero) {
  const VersionOracle oracle(0);
  EXPECT_FALSE(oracle.enabled());
  EXPECT_EQ(oracle.version_at(1, 0), 0u);
  EXPECT_EQ(oracle.version_at(1, 1'000'000'000), 0u);
  EXPECT_EQ(oracle.interval_of(1), 0);
}

TEST(VersionOracle, VersionsAreMonotone) {
  const VersionOracle oracle(1000);
  for (ObjectId object = 1; object <= 50; ++object) {
    std::uint64_t previous = 0;
    for (SimTime t = 0; t <= 20000; t += 500) {
      const std::uint64_t v = oracle.version_at(object, t);
      EXPECT_GE(v, previous) << "object " << object << " t " << t;
      previous = v;
    }
  }
}

TEST(VersionOracle, IntervalsAreJitteredAroundTheMean) {
  const VersionOracle oracle(1000);
  SimTime lo = kSimTimeMax;
  SimTime hi = 0;
  for (ObjectId object = 1; object <= 1000; ++object) {
    const SimTime interval = oracle.interval_of(object);
    EXPECT_GE(interval, 500);
    EXPECT_LE(interval, 1501);
    lo = std::min(lo, interval);
    hi = std::max(hi, interval);
  }
  // The jitter actually spreads: not all objects share one interval.
  EXPECT_GT(hi - lo, 500);
}

TEST(VersionOracle, Deterministic) {
  const VersionOracle a(777);
  const VersionOracle b(777);
  for (ObjectId object = 1; object <= 100; ++object) {
    EXPECT_EQ(a.interval_of(object), b.interval_of(object));
    EXPECT_EQ(a.version_at(object, 123456), b.version_at(object, 123456));
  }
}

TEST(VersionOracle, VersionMatchesIntervalArithmetic) {
  const VersionOracle oracle(200);
  const ObjectId object = 42;
  const SimTime interval = oracle.interval_of(object);
  EXPECT_EQ(oracle.version_at(object, interval - 1), 0u);
  EXPECT_EQ(oracle.version_at(object, interval), 1u);
  EXPECT_EQ(oracle.version_at(object, 5 * interval + 1), 5u);
}

TEST(VersionOracle, DifferentSeedsShuffleIntervals) {
  const VersionOracle a(1000, 1);
  const VersionOracle b(1000, 2);
  int differing = 0;
  for (ObjectId object = 1; object <= 100; ++object) {
    if (a.interval_of(object) != b.interval_of(object)) ++differing;
  }
  EXPECT_GT(differing, 90);
}

}  // namespace
}  // namespace adc::sim
