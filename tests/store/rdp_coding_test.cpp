// RDP erasure-code tests: every <= 2-erasure combination over several k
// values must round-trip through reconstruct(), and over-erased or
// malformed stripes must be rejected rather than guessed at.
#include "store/rdp_coding.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace adc::store {
namespace {

std::vector<std::vector<std::uint8_t>> random_stripe(const RdpCode& code,
                                                     std::size_t raw_chunk,
                                                     std::uint64_t seed) {
  const std::size_t padded = code.padded_chunk_size(raw_chunk);
  util::Rng rng(seed);
  std::vector<std::vector<std::uint8_t>> chunks(
      static_cast<std::size_t>(code.stripe_width()));
  for (int c = 0; c < code.k(); ++c) {
    auto& chunk = chunks[static_cast<std::size_t>(c)];
    chunk.resize(padded);
    for (auto& byte : chunk) byte = static_cast<std::uint8_t>(rng.next());
  }
  std::vector<std::vector<std::uint8_t>> data(chunks.begin(),
                                              chunks.begin() + code.k());
  code.encode(data, &chunks[static_cast<std::size_t>(code.k())],
              &chunks[static_cast<std::size_t>(code.k() + 1)]);
  return chunks;
}

TEST(RdpCode, PrimeAndWidthFollowK) {
  EXPECT_EQ(RdpCode(2).p(), 3);
  EXPECT_EQ(RdpCode(3).p(), 5);  // smallest prime >= 4
  EXPECT_EQ(RdpCode(4).p(), 5);
  EXPECT_EQ(RdpCode(6).p(), 7);
  EXPECT_EQ(RdpCode(3).stripe_width(), 5);
  // The one-chunk degenerate case is clamped up to k = 2.
  EXPECT_EQ(RdpCode(1).k(), 2);
  EXPECT_EQ(RdpCode(0).k(), 2);
}

TEST(RdpCode, PaddedChunkSizeIsBlockMultiple) {
  const RdpCode code(3);  // p = 5, so 4 blocks per chunk
  EXPECT_EQ(code.padded_chunk_size(0) % 4, 0u);
  EXPECT_GE(code.padded_chunk_size(1), 1u);
  EXPECT_EQ(code.padded_chunk_size(17) % 4, 0u);
  EXPECT_GE(code.padded_chunk_size(17), 17u);
}

TEST(RdpCode, AllSingleAndDoubleErasuresRoundTrip) {
  for (const int k : {2, 3, 4, 5, 7}) {
    const RdpCode code(k);
    const auto original = random_stripe(code, 61, 1000 + static_cast<std::uint64_t>(k));
    const int width = code.stripe_width();
    for (int a = 0; a < width; ++a) {
      for (int b = a; b < width; ++b) {
        auto damaged = original;
        damaged[static_cast<std::size_t>(a)].clear();
        damaged[static_cast<std::size_t>(b)].clear();  // a == b: single erasure
        ASSERT_TRUE(code.reconstruct(&damaged))
            << "k=" << k << " erased " << a << "," << b;
        EXPECT_EQ(damaged, original) << "k=" << k << " erased " << a << "," << b;
      }
    }
  }
}

TEST(RdpCode, PrimeBoundaryWidthsRoundTrip) {
  // The RDP geometry has two regimes: k + 1 already prime (no ghost
  // columns) and p > k + 1 (the code runs over imaginary zero columns).
  // Repair reconstructs in both; exercise every 2-erasure pair at each
  // boundary with a chunk size that is not a block multiple.
  for (const int k : {2, 4, 6}) {
    ASSERT_EQ(RdpCode(k).p(), k + 1) << "k=" << k;
  }
  for (const int k : {3, 5, 7}) {
    ASSERT_GT(RdpCode(k).p(), k + 1) << "k=" << k;
  }
  for (const int k : {2, 3, 4, 5, 6, 7}) {
    const RdpCode code(k);
    const auto original = random_stripe(code, 113, 4200 + static_cast<std::uint64_t>(k));
    const int width = code.stripe_width();
    for (int a = 0; a < width; ++a) {
      for (int b = a + 1; b < width; ++b) {
        auto damaged = original;
        damaged[static_cast<std::size_t>(a)].clear();
        damaged[static_cast<std::size_t>(b)].clear();
        ASSERT_TRUE(code.reconstruct(&damaged))
            << "k=" << k << " erased " << a << "," << b;
        EXPECT_EQ(damaged, original) << "k=" << k << " erased " << a << "," << b;
      }
    }
  }
}

TEST(RdpCode, ReconstructThenReencodeIsBitIdentical) {
  // The repair path's core guarantee: a chunk rebuilt by equation peeling
  // then re-encoded into fresh parity is indistinguishable from the
  // original encode — a healed stripe IS the stripe, not an approximation.
  for (const int k : {2, 3, 4, 6, 7}) {
    const RdpCode code(k);
    const auto original = random_stripe(code, 97, 7700 + static_cast<std::uint64_t>(k));
    const int width = code.stripe_width();
    for (int a = 0; a < width; ++a) {
      for (int b = a + 1; b < width; ++b) {
        auto damaged = original;
        damaged[static_cast<std::size_t>(a)].clear();
        damaged[static_cast<std::size_t>(b)].clear();
        ASSERT_TRUE(code.reconstruct(&damaged));
        std::vector<std::vector<std::uint8_t>> data(damaged.begin(),
                                                    damaged.begin() + code.k());
        std::vector<std::uint8_t> row;
        std::vector<std::uint8_t> diag;
        code.encode(data, &row, &diag);
        EXPECT_EQ(row, original[static_cast<std::size_t>(code.k())])
            << "k=" << k << " erased " << a << "," << b;
        EXPECT_EQ(diag, original[static_cast<std::size_t>(code.k() + 1)])
            << "k=" << k << " erased " << a << "," << b;
      }
    }
  }
}

TEST(RdpCode, TripleErasureIsRejected) {
  const RdpCode code(3);
  auto chunks = random_stripe(code, 32, 7);
  chunks[0].clear();
  chunks[2].clear();
  chunks[4].clear();
  EXPECT_FALSE(code.reconstruct(&chunks));
}

TEST(RdpCode, MismatchedChunkSizesAreRejected) {
  const RdpCode code(3);
  auto chunks = random_stripe(code, 32, 8);
  chunks[1].resize(chunks[1].size() + 4);
  chunks[0].clear();
  EXPECT_FALSE(code.reconstruct(&chunks));
}

TEST(RdpCode, ParityActuallyDetectsCorruption) {
  // Flip one data byte and re-encode: both parities must change (the row
  // always, the diagonal for any block not on the missing diagonal).
  const RdpCode code(3);
  const auto stripe = random_stripe(code, 40, 9);
  std::vector<std::vector<std::uint8_t>> data(stripe.begin(), stripe.begin() + code.k());
  data[0][0] ^= 0xff;
  std::vector<std::uint8_t> row;
  std::vector<std::uint8_t> diag;
  code.encode(data, &row, &diag);
  EXPECT_NE(row, stripe[static_cast<std::size_t>(code.k())]);
}

}  // namespace
}  // namespace adc::store
