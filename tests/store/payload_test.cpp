// PayloadStore tests: deterministic heavy-tailed sizes, regenerable
// pattern slices, chunk/parity consistency with the RDP code, and the
// body/checksum verification the live daemon runs on every frame.
#include "store/payload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

namespace adc::store {
namespace {

PayloadConfig test_config() {
  PayloadConfig config;
  config.enabled = true;
  config.seed = 97;
  return config;
}

TEST(PayloadStore, SizesAreDeterministicAcrossInstances) {
  const PayloadStore a(test_config());
  const PayloadStore b(test_config());
  for (ObjectId object = 1; object <= 500; ++object) {
    EXPECT_EQ(a.size_of(object), b.size_of(object)) << "object " << object;
  }
}

TEST(PayloadStore, SizesRespectTheClamp) {
  PayloadConfig config = test_config();
  config.min_bytes = 1000;
  config.max_bytes = 2000;
  const PayloadStore store(config);
  for (ObjectId object = 1; object <= 2000; ++object) {
    const std::uint64_t size = store.size_of(object);
    EXPECT_GE(size, 1000u);
    EXPECT_LE(size, 2000u);
  }
}

TEST(PayloadStore, DifferentSeedsGiveDifferentUniverses) {
  PayloadConfig other = test_config();
  other.seed = 98;
  const PayloadStore a(test_config());
  const PayloadStore b(other);
  int differing = 0;
  for (ObjectId object = 1; object <= 200; ++object) {
    if (a.size_of(object) != b.size_of(object)) ++differing;
  }
  EXPECT_GT(differing, 150);  // almost every size should move with the seed
}

TEST(PayloadStore, DistributionIsHeavyTailed) {
  // Mean well above median is the signature that makes byte hit rate
  // diverge from request hit rate.
  const PayloadStore store(test_config());
  std::vector<std::uint64_t> sizes;
  for (ObjectId object = 1; object <= 5000; ++object) sizes.push_back(store.size_of(object));
  std::sort(sizes.begin(), sizes.end());
  const std::uint64_t median = sizes[sizes.size() / 2];
  std::uint64_t total = 0;
  for (const std::uint64_t size : sizes) total += size;
  const double mean = static_cast<double>(total) / static_cast<double>(sizes.size());
  EXPECT_GT(mean, static_cast<double>(median) * 1.3);
  // And the clamp must actually bite somewhere in a 5000-object universe.
  EXPECT_EQ(sizes.back(), store.config().max_bytes);
}

TEST(PayloadStore, BodySliceIsConsistentWithChunkSlices) {
  const PayloadStore store(test_config());
  const ObjectId object = 4242;
  const std::uint64_t chunk = store.chunk_size(object);
  ASSERT_GT(chunk, 0u);

  std::vector<std::uint8_t> body(static_cast<std::size_t>(std::min<std::uint64_t>(
      store.size_of(object), chunk)));
  store.fill_body(object, body.data(), body.size());

  // Data chunk 0 is the first `chunk` pattern bytes — the body prefix.
  std::vector<std::uint8_t> chunk0(static_cast<std::size_t>(chunk));
  const std::size_t got = store.fill_chunk(object, 0, chunk0.data(), chunk0.size());
  ASSERT_GE(got, body.size());
  EXPECT_TRUE(std::equal(body.begin(), body.end(), chunk0.begin()));
}

TEST(PayloadStore, ChunksReconstructTheStripe) {
  const PayloadStore store(test_config());
  const RdpCode& code = store.code();
  const ObjectId object = 777;
  const std::uint64_t chunk = store.chunk_size(object);
  const std::size_t padded = code.padded_chunk_size(static_cast<std::size_t>(chunk));

  std::vector<std::vector<std::uint8_t>> chunks(
      static_cast<std::size_t>(code.stripe_width()));
  for (int i = 0; i < code.stripe_width(); ++i) {
    auto& out = chunks[static_cast<std::size_t>(i)];
    out.assign(padded, 0);
    store.fill_chunk(object, i, out.data(), out.size());
  }
  const auto original = chunks;

  // Losing any data chunk plus one parity still reconstructs byte-exactly:
  // fill_chunk serves genuine RDP parity, not a placeholder.
  chunks[1].clear();
  chunks[static_cast<std::size_t>(code.k())].clear();
  ASSERT_TRUE(code.reconstruct(&chunks));
  EXPECT_EQ(chunks, original);
}

TEST(PayloadStore, VerifyBodyAcceptsTheGeneratedSample) {
  const PayloadStore store(test_config());
  for (ObjectId object = 10; object <= 20; ++object) {
    const std::uint64_t size = store.size_of(object);
    std::vector<std::uint8_t> body(static_cast<std::size_t>(
        std::min<std::uint64_t>(size, kMaxBodySample)));
    store.fill_body(object, body.data(), body.size());
    const std::uint64_t sum = store.checksum(object, size, body.data(), body.size());
    EXPECT_TRUE(store.verify_body(object, size, body.data(), body.size(), sum));
  }
}

TEST(PayloadStore, VerifyBodyRejectsTampering) {
  const PayloadStore store(test_config());
  const ObjectId object = 31;
  const std::uint64_t size = store.size_of(object);
  std::vector<std::uint8_t> body(static_cast<std::size_t>(
      std::min<std::uint64_t>(size, kMaxBodySample)));
  store.fill_body(object, body.data(), body.size());
  const std::uint64_t sum = store.checksum(object, size, body.data(), body.size());

  // Flipped byte.
  body[0] ^= 1;
  EXPECT_FALSE(store.verify_body(object, size, body.data(), body.size(), sum));
  body[0] ^= 1;
  // Wrong claimed size.
  EXPECT_FALSE(store.verify_body(object, size + 1, body.data(), body.size(), sum));
  // Wrong checksum.
  EXPECT_FALSE(store.verify_body(object, size, body.data(), body.size(), sum ^ 1));
  // Wrong object id.
  EXPECT_FALSE(store.verify_body(object + 1, size, body.data(), body.size(), sum));
  // Untouched sample still passes.
  EXPECT_TRUE(store.verify_body(object, size, body.data(), body.size(), sum));
}

TEST(PayloadStore, VerifyChunkAcceptsEveryIndexAndRejectsCrossTalk) {
  const PayloadStore store(test_config());
  const ObjectId object = 64;
  const std::uint64_t chunk = store.chunk_size(object);
  for (int index = 0; index < store.code().stripe_width(); ++index) {
    std::vector<std::uint8_t> body(static_cast<std::size_t>(
        std::min<std::uint64_t>(chunk, kMaxBodySample)));
    store.fill_chunk(object, index, body.data(), body.size());
    const std::uint64_t sum = store.checksum(object, chunk, body.data(), body.size());
    EXPECT_TRUE(store.verify_chunk(object, index, chunk, body.data(), body.size(), sum));
    // A different chunk index must not verify against this sample (the
    // pattern slices differ; only a degenerate all-equal payload could
    // collide, and the heavy-tailed pattern never is).
    const int other = (index + 1) % store.code().stripe_width();
    EXPECT_FALSE(store.verify_chunk(object, other, chunk, body.data(), body.size(), sum));
  }
}

TEST(PayloadStore, ChunkSizeCoversTheObject) {
  const PayloadStore store(test_config());
  for (ObjectId object = 100; object < 130; ++object) {
    const std::uint64_t k = static_cast<std::uint64_t>(store.code().k());
    EXPECT_GE(store.chunk_size(object) * k, store.size_of(object));
    EXPECT_LT((store.chunk_size(object) - 1) * k, store.size_of(object));
  }
}

}  // namespace
}  // namespace adc::store
