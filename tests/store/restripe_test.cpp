// Proactive re-stripe repair tests: the planner's budgeted rounds, retry
// and abandonment; replacement-owner election; and the leader/replacement
// state machine (offer, adopt, ack, rejoin hand-back) driven through a
// recording transport.
#include "store/restripe.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "sim/message.h"
#include "sim/transport.h"
#include "store/erasure_tier.h"
#include "util/rng.h"

namespace adc::store {
namespace {

using sim::Message;
using sim::MessageKind;

class RecordingTransport final : public sim::Transport {
 public:
  void send(Message msg) override { sent.push_back(msg); }
  util::Rng& rng() noexcept override { return rng_; }
  SimTime now() const noexcept override { return 0; }

  std::vector<Message> of_kind(MessageKind kind) const {
    std::vector<Message> out;
    for (const Message& msg : sent) {
      if (msg.kind == kind) out.push_back(msg);
    }
    return out;
  }

  std::vector<Message> sent;

 private:
  util::Rng rng_{5};
};

RepairItem item_for(ObjectId object, int index, NodeId target, std::uint64_t bytes,
                    NodeId dead_owner = 9) {
  RepairItem item;
  item.object = object;
  item.index = index;
  item.target = target;
  item.dead_owner = dead_owner;
  item.bytes = bytes;
  return item;
}

TEST(RestripePlanner, BudgetBoundsRoundsButNeverWedges) {
  RestripePlanner planner(/*bytes_per_round=*/150, /*max_attempts=*/10);
  planner.enqueue(item_for(1, 0, 5, 100));
  planner.enqueue(item_for(2, 0, 5, 100));
  planner.enqueue(item_for(3, 0, 5, 1000));  // alone bigger than the budget

  std::vector<ObjectId> offered;
  const auto record = [&](const RepairItem& item) { offered.push_back(item.object); };

  // 100 + 100 > 150: one item per round while same-sized work queues.
  EXPECT_EQ(planner.next_round(record), 100u);
  ASSERT_EQ(offered, (std::vector<ObjectId>{1}));
  EXPECT_EQ(planner.next_round(record), 100u);
  ASSERT_EQ(offered, (std::vector<ObjectId>{1, 2}));
  // The oversized chunk still goes out — a chunk larger than the budget
  // must not wedge the queue forever.
  EXPECT_EQ(planner.next_round(record), 1000u);
  ASSERT_EQ(offered, (std::vector<ObjectId>{1, 2, 3}));

  EXPECT_EQ(planner.stats().rounds, 3u);
  EXPECT_EQ(planner.stats().round_bytes_max, 1000u);
  EXPECT_EQ(planner.stats().repair_bytes, 1200u);
  // Nothing was acked: all three items are still queued for retry.
  EXPECT_EQ(planner.queued(), 3u);
}

TEST(RestripePlanner, UnackedItemsRetryThenAbandon) {
  RestripePlanner planner(/*bytes_per_round=*/0, /*max_attempts=*/2);
  planner.enqueue(item_for(7, 1, 4, 50));

  int offers = 0;
  const auto count = [&](const RepairItem&) { ++offers; };
  EXPECT_GT(planner.next_round(count), 0u);  // attempt 1
  EXPECT_GT(planner.next_round(count), 0u);  // attempt 2 (a retry)
  EXPECT_EQ(offers, 2);
  EXPECT_TRUE(planner.pending());
  // Attempts exhausted: the next round abandons instead of offering.
  EXPECT_EQ(planner.next_round(count), 0u);
  EXPECT_EQ(offers, 2);
  EXPECT_FALSE(planner.pending());
  EXPECT_EQ(planner.stats().retries, 1u);
  EXPECT_EQ(planner.stats().items_abandoned, 1u);
}

TEST(RestripePlanner, AckRetiresExactlyOneItem) {
  RestripePlanner planner(/*bytes_per_round=*/0, /*max_attempts=*/5);
  planner.enqueue(item_for(7, 1, 4, 50));
  planner.enqueue(item_for(7, 2, 5, 50));  // same object, different chunk
  planner.next_round([](const RepairItem&) {});

  RepairItem acked;
  EXPECT_TRUE(planner.acked(7, 1, &acked));
  EXPECT_EQ(acked.target, 4);
  EXPECT_FALSE(planner.acked(7, 1));  // already retired
  EXPECT_EQ(planner.queued(), 1u);
  EXPECT_TRUE(planner.acked(7, 2));
  EXPECT_FALSE(planner.pending());
}

TEST(RestripePlanner, EnqueueDedupsByChunkAndRetargets) {
  RestripePlanner planner(/*bytes_per_round=*/0, /*max_attempts=*/5);
  planner.enqueue(item_for(3, 2, 4, 64));
  // A later death reassigned the replacement: same chunk, new target.
  planner.enqueue(item_for(3, 2, 6, 64));
  EXPECT_EQ(planner.queued(), 1u);
  EXPECT_EQ(planner.stats().items_enqueued, 1u);

  NodeId offered_target = kInvalidNode;
  planner.next_round([&](const RepairItem& item) { offered_target = item.target; });
  EXPECT_EQ(offered_target, 6);
}

TEST(RestripePlanner, RejoinCancelsItsDeadOwnersItems) {
  RestripePlanner planner(/*bytes_per_round=*/0, /*max_attempts=*/5);
  planner.enqueue(item_for(1, 0, 4, 64, /*dead_owner=*/2));
  planner.enqueue(item_for(2, 1, 5, 64, /*dead_owner=*/3));
  planner.enqueue(item_for(3, 2, 6, 64, /*dead_owner=*/2));
  planner.cancel_for_dead_owner(2);
  EXPECT_EQ(planner.queued(), 1u);
  EXPECT_EQ(planner.stats().items_cancelled, 2u);

  ObjectId survivor = 0;
  planner.next_round([&](const RepairItem& item) { survivor = item.object; });
  EXPECT_EQ(survivor, 2u);
}

// --- ErasureTier repair state machine ----------------------------------

PayloadStorePtr make_repair_store(std::uint64_t repair_budget = 0,
                                  int max_attempts = 5, bool restripe = true) {
  PayloadConfig config;
  config.enabled = true;
  config.seed = 97;
  config.erasure.enabled = true;
  config.erasure.data_chunks = 3;
  config.erasure.restripe = restripe;
  config.erasure.repair_bytes_per_round = repair_budget;
  config.erasure.repair_max_attempts = max_attempts;
  return std::make_shared<const PayloadStore>(config);
}

const std::vector<NodeId> kMembers = {0, 1, 2, 3, 4, 5, 6, 7};

/// First object in [1, 2000) whose stripe leader (peers[0]) is `leader`.
ObjectId object_led_by(const ErasureTier& tier, NodeId leader) {
  for (ObjectId candidate = 1; candidate < 2000; ++candidate) {
    const auto peers = tier.stripe_peers(candidate);
    if (!peers.empty() && peers[0] == leader) return candidate;
  }
  return 0;
}

TEST(RestripeTier, EffectiveOwnersAreDeterministicAliveAndDisjoint) {
  const ErasureTier a(0, make_repair_store(), kMembers);
  ErasureTier b(3, make_repair_store(), kMembers);
  ErasureTier c(0, make_repair_store(), kMembers);
  ASSERT_TRUE(a.enabled());
  // Healthy: effective owners ARE the stripe.
  EXPECT_EQ(a.effective_owners(42), a.stripe_peers(42));

  c.handle_peer_dead(5);
  b.handle_peer_dead(5);
  for (ObjectId object = 1; object <= 200; ++object) {
    const auto peers = a.stripe_peers(object);
    const auto owners = c.effective_owners(object);
    // Same dead set, any node: identical replacement election.
    EXPECT_EQ(owners, b.effective_owners(object));
    ASSERT_EQ(owners.size(), peers.size());
    const std::set<NodeId> in_stripe(peers.begin(), peers.end());
    std::set<NodeId> seen;
    for (std::size_t i = 0; i < owners.size(); ++i) {
      ASSERT_NE(owners[i], kInvalidNode);
      EXPECT_TRUE(seen.insert(owners[i]).second) << "duplicate owner, object " << object;
      if (peers[i] != 5) {
        EXPECT_EQ(owners[i], peers[i]);  // alive originals keep their chunk
      } else {
        EXPECT_NE(owners[i], 5);
        EXPECT_EQ(in_stripe.count(owners[i]), 0u);  // replacement from outside
      }
    }
  }
}

TEST(RestripeTier, TwoDeathsElectDistinctReplacements) {
  ErasureTier tier(0, make_repair_store(), kMembers);
  const ObjectId object = object_led_by(tier, 0);
  ASSERT_NE(object, 0u);
  const auto peers = tier.stripe_peers(object);
  tier.handle_peer_dead(peers[3]);
  tier.handle_peer_dead(peers[4]);
  const auto owners = tier.effective_owners(object);
  ASSERT_NE(owners[3], kInvalidNode);
  ASSERT_NE(owners[4], kInvalidNode);
  // One chunk per node: the two lost indices go to two different members.
  EXPECT_NE(owners[3], owners[4]);
}

TEST(RestripeTier, OnlyTheLeaderEnqueuesRepair) {
  ErasureTier leader(0, make_repair_store(), kMembers);
  const ObjectId object = object_led_by(leader, 0);
  ASSERT_NE(object, 0u);
  const auto peers = leader.stripe_peers(object);

  RecordingTransport net;
  leader.stripe_object(net, object);  // records chunk 0 locally
  ASSERT_TRUE(leader.holds_chunk(object));
  leader.handle_peer_dead(peers[3]);
  EXPECT_EQ(leader.restripe_queued(), 1u);

  // A surviving non-leader holding a chunk of the same stripe stays quiet.
  ErasureTier follower(peers[1], make_repair_store(), kMembers);
  Message store_msg;
  store_msg.kind = MessageKind::kStripeStore;
  store_msg.object = object;
  store_msg.resolver = 1;
  store_msg.payload_bytes = 64;
  follower.on_stripe_store(store_msg);
  follower.handle_peer_dead(peers[3]);
  EXPECT_EQ(follower.restripe_queued(), 0u);

  // But when the leader itself dies, the next survivor takes over.
  follower.handle_peer_dead(peers[0]);
  EXPECT_GT(follower.restripe_queued(), 0u);
}

TEST(RestripeTier, OfferAdoptAckHealsTheStripe) {
  ErasureTier leader(0, make_repair_store(), kMembers);
  const ObjectId object = object_led_by(leader, 0);
  ASSERT_NE(object, 0u);
  const auto peers = leader.stripe_peers(object);

  RecordingTransport net;
  leader.stripe_object(net, object);
  leader.handle_peer_dead(peers[3]);
  net.sent.clear();
  leader.restripe_round(net);
  const auto offers = net.of_kind(MessageKind::kRestripeOffer);
  ASSERT_EQ(offers.size(), 1u);
  const Message offer = offers[0];
  EXPECT_EQ(offer.object, object);
  EXPECT_EQ(offer.resolver, 3);
  EXPECT_EQ(offer.target, leader.effective_owners(object)[3]);
  EXPECT_EQ(offer.payload_bytes, make_repair_store()->chunk_size(object));

  // The replacement adopts the chunk and acks.
  ErasureTier replacement(offer.target, make_repair_store(), kMembers);
  RecordingTransport net2;
  replacement.on_restripe_offer(net2, offer);
  EXPECT_TRUE(replacement.holds_chunk(object));
  EXPECT_EQ(replacement.stats().restripe_adopted, 1u);
  int adopted_index = -1;
  replacement.for_each_chunk(
      [&](ObjectId o, int index, std::uint64_t) {
        if (o == object) adopted_index = index;
      });
  EXPECT_EQ(adopted_index, 3);
  const auto acks = net2.of_kind(MessageKind::kRestripeAck);
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0].target, 0);

  // The ack retires the work item and counts a healed stripe.
  leader.on_restripe_ack(acks[0]);
  EXPECT_EQ(leader.stats().stripes_healed, 1u);
  EXPECT_FALSE(leader.restripe_pending());
}

TEST(RestripeTier, ChunkRequestsRequireTheMatchingIndex) {
  // Once repair re-homes chunks, a node may hold a *different* chunk of an
  // object than a degraded reader expects; claiming it would corrupt the
  // recovery count.
  ErasureTier tier(1, make_repair_store(), kMembers);
  Message store_msg;
  store_msg.kind = MessageKind::kStripeStore;
  store_msg.object = 7;
  store_msg.resolver = 2;
  store_msg.payload_bytes = 64;
  tier.on_stripe_store(store_msg);

  RecordingTransport net;
  Message req;
  req.kind = MessageKind::kChunkRequest;
  req.request_id = 900;
  req.object = 7;
  req.sender = 0;
  req.resolver = 1;  // asks for an index this node does not hold
  tier.on_chunk_request(net, req);
  req.resolver = 2;  // the held index
  tier.on_chunk_request(net, req);

  const auto replies = net.of_kind(MessageKind::kChunkReply);
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_FALSE(replies[0].cached);
  EXPECT_TRUE(replies[1].cached);
}

TEST(RestripeTier, RejoinCancelsQueuedRepairWork) {
  ErasureTier leader(0, make_repair_store(), kMembers);
  const ObjectId object = object_led_by(leader, 0);
  ASSERT_NE(object, 0u);
  const auto peers = leader.stripe_peers(object);
  RecordingTransport net;
  leader.stripe_object(net, object);
  leader.handle_peer_dead(peers[3]);
  ASSERT_TRUE(leader.restripe_pending());
  leader.handle_peer_joined(peers[3]);
  EXPECT_FALSE(leader.restripe_pending());
  EXPECT_EQ(leader.restripe_stats().items_cancelled, 1u);
}

TEST(RestripeTier, RejoinHandsFosterChunksBack) {
  // A replacement adopted chunk 3 of the stripe; when the original owner
  // returns it gets its chunk back and the foster copy is dropped.
  ErasureTier leader(0, make_repair_store(), kMembers);
  const ObjectId object = object_led_by(leader, 0);
  ASSERT_NE(object, 0u);
  const auto peers = leader.stripe_peers(object);
  RecordingTransport net;
  leader.stripe_object(net, object);
  leader.handle_peer_dead(peers[3]);
  net.sent.clear();
  leader.restripe_round(net);
  const auto offers = net.of_kind(MessageKind::kRestripeOffer);
  ASSERT_EQ(offers.size(), 1u);

  ErasureTier replacement(offers[0].target, make_repair_store(), kMembers);
  RecordingTransport net2;
  replacement.handle_peer_dead(peers[3]);
  replacement.on_restripe_offer(net2, offers[0]);
  ASSERT_TRUE(replacement.holds_chunk(object));

  replacement.handle_peer_joined(peers[3]);
  ASSERT_TRUE(replacement.restripe_pending());
  net2.sent.clear();
  replacement.restripe_round(net2);
  const auto hand_backs = net2.of_kind(MessageKind::kRestripeOffer);
  ASSERT_EQ(hand_backs.size(), 1u);
  EXPECT_EQ(hand_backs[0].target, peers[3]);
  EXPECT_EQ(hand_backs[0].resolver, 3);

  // The owner acks; the foster copy goes away.
  Message ack;
  ack.kind = MessageKind::kRestripeAck;
  ack.object = object;
  ack.sender = peers[3];
  ack.target = offers[0].target;
  ack.resolver = 3;
  replacement.on_restripe_ack(ack);
  EXPECT_FALSE(replacement.holds_chunk(object));
  EXPECT_EQ(replacement.stats().restripe_handbacks, 1u);
}

TEST(RestripeTier, StripesRegisteredMidOutageAreBornFullWidth) {
  ErasureTier tier(0, make_repair_store(), kMembers);
  // An object striped elsewhere, so every chunk leaves as a message.
  ObjectId object = 0;
  for (ObjectId candidate = 1; candidate < 2000; ++candidate) {
    const auto peers = tier.stripe_peers(candidate);
    if (std::count(peers.begin(), peers.end(), 0) == 0) {
      object = candidate;
      break;
    }
  }
  ASSERT_NE(object, 0u);
  const auto peers = tier.stripe_peers(object);
  tier.handle_peer_dead(peers[2]);

  RecordingTransport net;
  tier.stripe_object(net, object);
  const auto stores = net.of_kind(MessageKind::kStripeStore);
  ASSERT_EQ(stores.size(), peers.size());  // full width despite the death
  const auto owners = tier.effective_owners(object);
  for (const Message& msg : stores) {
    EXPECT_NE(msg.target, peers[2]);
    EXPECT_EQ(msg.target, owners[static_cast<std::size_t>(msg.resolver)]);
  }
}

TEST(RestripeTier, ReconstructChunkMatchesFillChunkEveryIndex) {
  // The live repair path materializes offers with reconstruct_chunk
  // (genuine equation peeling); the receiver verifies against fill_chunk.
  // They must agree byte for byte at every index, data and parity alike.
  const auto store = make_repair_store();
  for (const ObjectId object : {ObjectId{3}, ObjectId{17}, ObjectId{420}}) {
    const std::size_t chunk = static_cast<std::size_t>(store->chunk_size(object));
    std::vector<std::uint8_t> rebuilt(chunk);
    std::vector<std::uint8_t> direct(chunk);
    for (int index = 0; index < store->code().stripe_width(); ++index) {
      const std::size_t got = store->reconstruct_chunk(object, index, rebuilt.data(), chunk);
      const std::size_t want = store->fill_chunk(object, index, direct.data(), chunk);
      ASSERT_GT(got, 0u) << "object " << object << " index " << index;
      ASSERT_EQ(std::vector<std::uint8_t>(rebuilt.begin(), rebuilt.begin() + got),
                std::vector<std::uint8_t>(direct.begin(), direct.begin() + want))
          << "object " << object << " index " << index;
    }
  }
}

}  // namespace
}  // namespace adc::store
