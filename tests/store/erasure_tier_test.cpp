// ErasureTier state-machine tests: stripe assignment, the chunk directory
// and its byte budget, and the degraded-read recovery protocol — driven
// through a recording transport, no simulator required.
#include "store/erasure_tier.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "sim/message.h"
#include "sim/transport.h"
#include "util/rng.h"

namespace adc::store {
namespace {

using sim::Message;
using sim::MessageKind;

class RecordingTransport final : public sim::Transport {
 public:
  void send(Message msg) override { sent.push_back(msg); }
  util::Rng& rng() noexcept override { return rng_; }
  SimTime now() const noexcept override { return 0; }

  std::vector<Message> of_kind(MessageKind kind) const {
    std::vector<Message> out;
    for (const Message& msg : sent) {
      if (msg.kind == kind) out.push_back(msg);
    }
    return out;
  }

  std::vector<Message> sent;

 private:
  util::Rng rng_{5};
};

PayloadStorePtr make_store(std::uint64_t directory_budget = 0) {
  PayloadConfig config;
  config.enabled = true;
  config.seed = 97;
  config.erasure.enabled = true;
  config.erasure.data_chunks = 3;
  config.erasure.directory_budget = directory_budget;
  return std::make_shared<const PayloadStore>(config);
}

const std::vector<NodeId> kMembers = {0, 1, 2, 3, 4, 5, 6};

Message client_request(ObjectId object, RequestId id) {
  Message msg;
  msg.kind = MessageKind::kRequest;
  msg.request_id = id;
  msg.object = object;
  msg.sender = 0;
  msg.client = 9;
  return msg;
}

Message chunk_reply(const Message& request, int index, bool cached,
                    std::uint64_t bytes) {
  Message reply;
  reply.kind = MessageKind::kChunkReply;
  reply.request_id = request.request_id;
  reply.object = request.object;
  reply.resolver = static_cast<NodeId>(index);
  reply.cached = cached;
  reply.payload_bytes = cached ? bytes : 0;
  return reply;
}

TEST(ErasureTier, DisabledBelowStripeWidth) {
  // k = 3 needs 5 members; 4 cannot host a stripe.
  const ErasureTier tier(0, make_store(), {0, 1, 2, 3});
  EXPECT_FALSE(tier.enabled());
  EXPECT_TRUE(tier.stripe_peers(1).empty());
}

TEST(ErasureTier, StripePeersAreDeterministicDistinctAndMemberwise) {
  const ErasureTier a(0, make_store(), kMembers);
  const ErasureTier b(3, make_store(), kMembers);
  ASSERT_TRUE(a.enabled());
  std::set<std::vector<NodeId>> assignments;
  for (ObjectId object = 1; object <= 200; ++object) {
    const std::vector<NodeId> peers = a.stripe_peers(object);
    ASSERT_EQ(peers.size(), 5u);
    // Same assignment computed on every node, coordination-free.
    EXPECT_EQ(peers, b.stripe_peers(object));
    const std::set<NodeId> unique(peers.begin(), peers.end());
    EXPECT_EQ(unique.size(), peers.size());
    for (const NodeId peer : peers) {
      EXPECT_TRUE(std::count(kMembers.begin(), kMembers.end(), peer) == 1);
    }
    assignments.insert(peers);
  }
  // Rendezvous hashing spreads stripes: one fixed assignment would pin
  // every chunk on the same 5 nodes.
  EXPECT_GT(assignments.size(), 10u);
}

TEST(ErasureTier, StripeObjectRegistersOncePerObject) {
  auto store = make_store();
  ErasureTier tier(0, store, kMembers);
  RecordingTransport net;
  const ObjectId object = 42;
  tier.stripe_object(net, object);
  tier.stripe_object(net, object);  // deduplicated

  const std::vector<NodeId> peers = tier.stripe_peers(object);
  const bool self_in_stripe = std::count(peers.begin(), peers.end(), 0) != 0;
  const auto stores = net.of_kind(MessageKind::kStripeStore);
  EXPECT_EQ(stores.size(), peers.size() - (self_in_stripe ? 1 : 0));
  EXPECT_EQ(tier.stats().stripes_registered, 1u);
  EXPECT_EQ(tier.holds_chunk(object), self_in_stripe);
  for (const Message& msg : stores) {
    EXPECT_EQ(msg.object, object);
    EXPECT_EQ(msg.payload_bytes, store->chunk_size(object));
    // resolver carries the chunk index matching the peer's stripe slot.
    EXPECT_EQ(peers[static_cast<std::size_t>(msg.resolver)], msg.target);
  }
}

TEST(ErasureTier, DirectoryBudgetEvictsOldestChunks) {
  auto store = make_store(/*directory_budget=*/1);  // fits nothing
  ErasureTier tier(0, store, kMembers);
  Message store_msg;
  store_msg.kind = MessageKind::kStripeStore;
  store_msg.object = 1;
  store_msg.resolver = 0;
  store_msg.payload_bytes = 100;
  tier.on_stripe_store(store_msg);
  EXPECT_FALSE(tier.holds_chunk(1));  // bigger than the whole budget
  EXPECT_EQ(tier.directory_bytes(), 0u);

  auto roomy = make_store(/*directory_budget=*/250);
  ErasureTier tier2(0, roomy, kMembers);
  for (ObjectId object = 1; object <= 3; ++object) {
    store_msg.object = object;
    tier2.on_stripe_store(store_msg);
  }
  // 3 x 100 > 250: the oldest (object 1) was evicted.
  EXPECT_FALSE(tier2.holds_chunk(1));
  EXPECT_TRUE(tier2.holds_chunk(2));
  EXPECT_TRUE(tier2.holds_chunk(3));
  EXPECT_EQ(tier2.stats().chunks_evicted, 1u);
  EXPECT_EQ(tier2.directory_bytes(), 200u);
}

TEST(ErasureTier, ChunkRequestServesHeldAndFlagsMissing) {
  auto store = make_store();
  ErasureTier tier(1, store, kMembers);
  Message store_msg;
  store_msg.kind = MessageKind::kStripeStore;
  store_msg.object = 7;
  store_msg.resolver = 2;
  store_msg.payload_bytes = 64;
  tier.on_stripe_store(store_msg);

  RecordingTransport net;
  Message req;
  req.kind = MessageKind::kChunkRequest;
  req.request_id = 900;
  req.object = 7;
  req.sender = 0;
  req.resolver = 2;
  tier.on_chunk_request(net, req);
  req.object = 8;  // never striped here
  tier.on_chunk_request(net, req);

  const auto replies = net.of_kind(MessageKind::kChunkReply);
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_TRUE(replies[0].cached);
  EXPECT_EQ(replies[0].payload_bytes, 64u);
  EXPECT_EQ(replies[0].target, 0);
  EXPECT_FALSE(replies[1].cached);
  EXPECT_EQ(tier.stats().chunk_replies_served, 1u);
  EXPECT_EQ(tier.stats().chunk_replies_missing, 1u);
}

TEST(ErasureTier, RecoveryCollectsKChunksThenResolves) {
  auto store = make_store();
  ErasureTier tier(0, store, kMembers);
  RecordingTransport net;

  // Pick an object whose stripe excludes node 0, so every chunk must come
  // from a peer and the arithmetic below is exact.
  ObjectId object = 0;
  for (ObjectId candidate = 1; candidate < 500; ++candidate) {
    const auto peers = tier.stripe_peers(candidate);
    if (std::count(peers.begin(), peers.end(), 0) == 0) {
      object = candidate;
      break;
    }
  }
  ASSERT_NE(object, 0u);

  tier.handle_peer_dead(6);
  ASSERT_TRUE(tier.has_dead_peer());
  const Message request = client_request(object, 501);
  ASSERT_TRUE(tier.begin_recovery(net, request));
  const auto asks = net.of_kind(MessageKind::kChunkRequest);
  const auto peers = tier.stripe_peers(object);
  const std::size_t dead_in_stripe =
      static_cast<std::size_t>(std::count(peers.begin(), peers.end(), 6));
  EXPECT_EQ(asks.size(), peers.size() - dead_in_stripe);
  for (const Message& ask : asks) EXPECT_NE(ask.target, 6);

  // Two confirmations: still pending (k = 3); the third recovers.
  EXPECT_EQ(tier.on_chunk_reply(chunk_reply(request, 0, true, 10)).outcome,
            ErasureTier::Outcome::kPending);
  EXPECT_EQ(tier.on_chunk_reply(chunk_reply(request, 1, true, 10)).outcome,
            ErasureTier::Outcome::kPending);
  const auto res = tier.on_chunk_reply(chunk_reply(request, 2, true, 10));
  EXPECT_EQ(res.outcome, ErasureTier::Outcome::kRecovered);
  EXPECT_EQ(res.request.request_id, request.request_id);
  EXPECT_EQ(res.object_bytes, store->size_of(object));
  EXPECT_EQ(tier.stats().degraded_recovered, 1u);
  EXPECT_EQ(tier.stats().recovered_bytes, store->size_of(object));
  // The recovery is retired: a straggler reply is stale.
  EXPECT_EQ(tier.on_chunk_reply(chunk_reply(request, 3, true, 10)).outcome,
            ErasureTier::Outcome::kNone);
}

TEST(ErasureTier, ShortfallFallsBackToOrigin) {
  auto store = make_store();
  ErasureTier tier(0, store, kMembers);
  RecordingTransport net;
  ObjectId object = 0;
  for (ObjectId candidate = 1; candidate < 500; ++candidate) {
    const auto peers = tier.stripe_peers(candidate);
    if (std::count(peers.begin(), peers.end(), 0) == 0) {
      object = candidate;
      break;
    }
  }
  ASSERT_NE(object, 0u);
  tier.handle_peer_dead(6);
  const Message request = client_request(object, 502);
  ASSERT_TRUE(tier.begin_recovery(net, request));
  const std::size_t asked = net.of_kind(MessageKind::kChunkRequest).size();
  ASSERT_GE(asked, 3u);

  // Every survivor answers "chunk missing": once 3 confirmations become
  // impossible the recovery fails and returns the original request.
  ErasureTier::Resolution last;
  for (std::size_t i = 0; i < asked; ++i) {
    last = tier.on_chunk_reply(chunk_reply(request, static_cast<int>(i), false, 0));
    if (last.outcome == ErasureTier::Outcome::kFailed) break;
  }
  EXPECT_EQ(last.outcome, ErasureTier::Outcome::kFailed);
  EXPECT_EQ(last.request.request_id, request.request_id);
  EXPECT_EQ(tier.stats().degraded_failed, 1u);
}

TEST(ErasureTier, RecoveryRefusedWhenSurvivorsCannotReachK) {
  auto store = make_store();
  ErasureTier tier(0, store, kMembers);
  RecordingTransport net;
  ObjectId object = 0;
  for (ObjectId candidate = 1; candidate < 500; ++candidate) {
    const auto peers = tier.stripe_peers(candidate);
    if (std::count(peers.begin(), peers.end(), 0) == 0) {
      object = candidate;
      break;
    }
  }
  ASSERT_NE(object, 0u);
  // Kill 3 of the 5 stripe peers: at most 2 survivors < k = 3.
  const auto peers = tier.stripe_peers(object);
  tier.handle_peer_dead(peers[0]);
  tier.handle_peer_dead(peers[1]);
  tier.handle_peer_dead(peers[2]);
  EXPECT_FALSE(tier.begin_recovery(net, client_request(object, 503)));
  EXPECT_TRUE(net.sent.empty());
  EXPECT_EQ(tier.stats().degraded_started, 0u);
}

TEST(ErasureTier, RejoinClosesTheDegradedGate) {
  ErasureTier tier(0, make_store(), kMembers);
  tier.handle_peer_dead(3);
  EXPECT_TRUE(tier.has_dead_peer());
  tier.handle_peer_joined(3);
  EXPECT_FALSE(tier.has_dead_peer());
}

}  // namespace
}  // namespace adc::store
