#include "proxy/coordinator.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "proxy/client.h"
#include "proxy/hierarchical_proxy.h"
#include "proxy/origin_server.h"
#include "sim/simulator.h"

namespace adc::proxy {
namespace {

struct Deployment {
  Deployment(int n, std::vector<ObjectId> requests, CoordinatorConfig config = {},
             std::uint64_t seed = 1)
      : sim(seed), stream(std::move(requests)) {
    const NodeId coordinator_id = n;
    const NodeId origin_id = n + 1;
    const NodeId client_id = n + 2;
    std::vector<NodeId> backend_ids;
    for (int i = 0; i < n; ++i) {
      backend_ids.push_back(i);
      auto node = std::make_unique<CacheNode>(i, "backend[" + std::to_string(i) + "]",
                                              origin_id, 32);
      backends.push_back(node.get());
      sim.add_node(std::move(node));
    }
    auto coord_node = std::make_unique<Coordinator>(coordinator_id, "coordinator",
                                                    backend_ids, config);
    coordinator = coord_node.get();
    sim.add_node(std::move(coord_node));
    auto origin_node = std::make_unique<OriginServer>(origin_id, "origin");
    origin = origin_node.get();
    sim.add_node(std::move(origin_node));
    auto client_node = std::make_unique<Client>(client_id, "client", stream,
                                                std::vector<NodeId>{coordinator_id});
    client = client_node.get();
    sim.add_node(std::move(client_node));
  }

  void run() {
    client->start(sim);
    sim.run();
  }

  sim::Simulator sim;
  VectorStream stream;
  std::vector<CacheNode*> backends;
  Coordinator* coordinator = nullptr;
  OriginServer* origin = nullptr;
  Client* client = nullptr;
};

TEST(Coordinator, RoutesAllTrafficAndConserves) {
  std::vector<ObjectId> requests;
  for (int i = 0; i < 200; ++i) requests.push_back(1 + i % 13);
  Deployment d(3, requests);
  d.run();
  EXPECT_TRUE(d.client->drained());
  EXPECT_EQ(d.coordinator->stats().dispatched, 200u);
  EXPECT_EQ(d.coordinator->stats().replies_relayed, 200u);
  const auto& summary = d.sim.metrics().summary();
  EXPECT_EQ(summary.completed, 200u);
  EXPECT_EQ(summary.hits + d.origin->requests_served(), 200u);
}

TEST(Coordinator, PendingDrains) {
  std::vector<ObjectId> requests;
  for (int i = 0; i < 100; ++i) requests.push_back(1 + i % 9);
  Deployment d(3, requests);
  d.run();
  EXPECT_EQ(d.coordinator->pending(), 0u);
}

TEST(Coordinator, HitJourneyHopsIncludeCoordinatorRelay) {
  // Single backend: journey 1 misses (c->co->b->o->b->co->c = 6 hops),
  // journey 2 hits (c->co->b->co->c = 4 hops).
  Deployment d(1, {7, 7});
  d.run();
  const auto& summary = d.sim.metrics().summary();
  EXPECT_EQ(summary.hits, 1u);
  EXPECT_EQ(summary.total_hops, 6u + 4u);
}

TEST(Coordinator, BalancesLoadAcrossEquallyFastBackends) {
  // Greedy dispatch with no exploration.  All scores start at 0.5
  // (optimistic), so the cold misses walk through every backend once;
  // afterwards equal hit response times keep pulling the current pick's
  // score down to the common level, and the dispatcher keeps rotating —
  // the self-balancing behaviour the coordinator was built for (paper
  // Section II.1: it adapts load, not content placement).
  CoordinatorConfig config;
  config.epsilon = 0.0;
  std::vector<ObjectId> requests(100, 42);
  Deployment d(3, requests, config);
  d.run();
  // 3 cold misses (one per backend), then 97 hits.
  EXPECT_EQ(d.sim.metrics().summary().hits, 97u);
  EXPECT_EQ(d.origin->requests_served(), 3u);
  for (const CacheNode* backend : d.backends) {
    EXPECT_GT(backend->stats().requests_received, 20u) << backend->name();
  }
}

TEST(Coordinator, ExplorationSpreadssLoad) {
  CoordinatorConfig config;
  config.epsilon = 1.0;  // always explore: uniform dispatch
  std::vector<ObjectId> requests(300, 42);
  Deployment d(3, requests, config, /*seed=*/5);
  d.run();
  EXPECT_EQ(d.coordinator->stats().explored, 300u);
  for (const CacheNode* backend : d.backends) {
    EXPECT_GT(backend->stats().requests_received, 50u) << backend->name();
  }
}

TEST(Coordinator, ScoresAreTracked) {
  Deployment d(2, {1, 1, 1, 1});
  d.run();
  // Scores remain in (0, 1] and the dispatching backend's score moved off
  // the 0.5 initialisation.
  bool moved = false;
  for (const CacheNode* backend : d.backends) {
    const double s = d.coordinator->score(backend->id());
    EXPECT_GT(s, 0.0);
    EXPECT_LE(s, 1.0);
    if (s != 0.5) moved = true;
  }
  EXPECT_TRUE(moved);
  EXPECT_EQ(d.coordinator->score(999), 0.0);  // unknown backend
}

TEST(Coordinator, ContentBlindnessCapsHitRate) {
  // The coordinator's known weakness (paper Section II.1): it dispatches
  // without considering placement.  With pure exploration over 3 backends,
  // a hot object gets replicated everywhere, costing extra origin fetches
  // compared to a content-aware scheme.
  CoordinatorConfig config;
  config.epsilon = 1.0;
  std::vector<ObjectId> requests(60, 42);
  Deployment d(3, requests, config, /*seed=*/9);
  d.run();
  // One fetch per backend (each must warm up separately).
  EXPECT_EQ(d.origin->requests_served(), 3u);
}

}  // namespace
}  // namespace adc::proxy
