#include "proxy/soap_proxy.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "proxy/client.h"
#include "proxy/origin_server.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace adc::proxy {
namespace {

struct Deployment {
  Deployment(int n, std::vector<ObjectId> requests, SoapConfig config = {},
             std::uint64_t seed = 1, std::size_t categories = 8,
             std::size_t cache_capacity = 64)
      : sim(seed), stream(std::move(requests)) {
    std::vector<NodeId> ids;
    for (int i = 0; i < n; ++i) ids.push_back(i);
    const NodeId origin_id = n;
    const NodeId client_id = n + 1;
    auto category_map = std::make_shared<CategoryMap>(categories);
    for (int i = 0; i < n; ++i) {
      auto node = std::make_unique<SoapProxy>(i, "proxy[" + std::to_string(i) + "]",
                                              category_map, ids, origin_id, cache_capacity,
                                              config);
      proxies.push_back(node.get());
      sim.add_node(std::move(node));
    }
    auto origin_node = std::make_unique<OriginServer>(origin_id, "origin");
    origin = origin_node.get();
    sim.add_node(std::move(origin_node));
    auto client_node = std::make_unique<Client>(client_id, "client", stream, ids,
                                                EntryPolicy::kRoundRobin);
    client = client_node.get();
    sim.add_node(std::move(client_node));
  }

  void run() {
    client->start(sim);
    sim.run();
  }

  sim::Simulator sim;
  VectorStream stream;
  std::vector<SoapProxy*> proxies;
  OriginServer* origin = nullptr;
  Client* client = nullptr;
};

TEST(SoapProxy, CategoryMapPartitionsObjects) {
  const CategoryMap map(8);
  EXPECT_EQ(map.categories(), 8u);
  EXPECT_EQ(map.category_of(0), 0u);
  EXPECT_EQ(map.category_of(9), 1u);
  EXPECT_EQ(map.category_of(15), 7u);
}

TEST(SoapProxy, EverythingResolvesAndConserves) {
  std::vector<ObjectId> requests;
  for (int i = 0; i < 400; ++i) requests.push_back(1 + i % 19);
  Deployment d(3, requests);
  d.run();
  EXPECT_TRUE(d.client->drained());
  const auto& summary = d.sim.metrics().summary();
  EXPECT_EQ(summary.completed, 400u);
  EXPECT_EQ(summary.hits + d.origin->requests_served(), 400u);
}

TEST(SoapProxy, PendingDrains) {
  std::vector<ObjectId> requests;
  for (int i = 0; i < 200; ++i) requests.push_back(1 + i % 11);
  Deployment d(3, requests);
  d.run();
  for (const SoapProxy* proxy : d.proxies) EXPECT_EQ(proxy->pending(), 0u);
}

TEST(SoapProxy, HotCategoryConvergesToHits) {
  // One hot object requested repeatedly: after warmup the responsible
  // proxy (or the entries' caches) must serve it without the origin.
  std::vector<ObjectId> requests(300, 42);
  SoapConfig config;
  config.epsilon = 0.02;
  Deployment d(3, requests, config, /*seed=*/3);
  d.run();
  EXPECT_GT(d.sim.metrics().summary().hit_rate(), 0.85);
  EXPECT_LT(d.origin->requests_served(), 20u);
}

TEST(SoapProxy, ScoresMoveWithFeedback) {
  std::vector<ObjectId> requests(100, 42);
  Deployment d(2, requests, SoapConfig{}, /*seed=*/5);
  d.run();
  // The hot object's category routing was reinforced somewhere: at least
  // one (entry, peer) score moved off the 0.5 initial value.
  const CategoryMap map(8);
  const std::size_t category = map.category_of(42);
  bool moved = false;
  for (const SoapProxy* proxy : d.proxies) {
    for (NodeId peer = 0; peer < 2; ++peer) {
      if (proxy->score(category, peer) != 0.5) moved = true;
    }
  }
  EXPECT_TRUE(moved);
}

TEST(SoapProxy, CategoryGranularityIsAWorkloadSensitiveKnob) {
  // The paper's SOAP retrospective (Section II.2) motivated ADC's
  // per-object tables because category-level mappings couldn't adapt to
  // arbitrary request mixes.  Granularity is a real knob: both extremes
  // must stay correct, and the learned structures must differ.
  util::Rng workload_rng(99);
  const util::ZipfSampler zipf(300, 0.9);
  std::vector<ObjectId> requests;
  for (int i = 0; i < 8000; ++i) {
    requests.push_back(static_cast<ObjectId>(zipf.sample(workload_rng)));
  }

  for (const std::size_t categories : {std::size_t{1}, std::size_t{16}}) {
    Deployment d(3, requests, SoapConfig{}, /*seed=*/7, categories,
                 /*cache_capacity=*/100);
    d.run();
    const auto& summary = d.sim.metrics().summary();
    EXPECT_EQ(summary.completed, 8000u) << "categories " << categories;
    EXPECT_EQ(summary.hits + d.origin->requests_served(), 8000u)
        << "categories " << categories;
    EXPECT_GT(summary.hit_rate(), 0.5) << "categories " << categories;
    for (const SoapProxy* proxy : d.proxies) {
      EXPECT_EQ(proxy->pending(), 0u);
    }
  }
}

TEST(SoapProxy, DeterministicAcrossRuns) {
  std::vector<ObjectId> requests;
  for (int i = 0; i < 200; ++i) requests.push_back(1 + i % 13);
  Deployment a(3, requests, SoapConfig{}, /*seed=*/9);
  Deployment b(3, requests, SoapConfig{}, /*seed=*/9);
  a.run();
  b.run();
  EXPECT_EQ(a.sim.metrics().summary().hits, b.sim.metrics().summary().hits);
  EXPECT_EQ(a.sim.metrics().summary().total_hops, b.sim.metrics().summary().total_hops);
}

}  // namespace
}  // namespace adc::proxy
