#include "proxy/hierarchical_proxy.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "proxy/client.h"
#include "proxy/origin_server.h"
#include "sim/simulator.h"

namespace adc::proxy {
namespace {

/// 2-level hierarchy: `leaves` CacheNodes under one root CacheNode.
struct Hierarchy {
  Hierarchy(int leaves, std::vector<ObjectId> requests, std::size_t capacity = 8)
      : sim(1), stream(std::move(requests)) {
    const NodeId root_id = leaves;
    const NodeId origin_id = leaves + 1;
    const NodeId client_id = leaves + 2;
    std::vector<NodeId> leaf_ids;
    for (int i = 0; i < leaves; ++i) {
      leaf_ids.push_back(i);
      auto node = std::make_unique<CacheNode>(i, "leaf[" + std::to_string(i) + "]", root_id,
                                              capacity);
      nodes.push_back(node.get());
      sim.add_node(std::move(node));
    }
    auto root_node = std::make_unique<CacheNode>(root_id, "root", origin_id, capacity);
    root = root_node.get();
    sim.add_node(std::move(root_node));
    auto origin_node = std::make_unique<OriginServer>(origin_id, "origin");
    origin = origin_node.get();
    sim.add_node(std::move(origin_node));
    auto client_node = std::make_unique<Client>(client_id, "client", stream, leaf_ids,
                                                EntryPolicy::kRoundRobin);
    client = client_node.get();
    sim.add_node(std::move(client_node));
  }

  void run() {
    client->start(sim);
    sim.run();
  }

  sim::Simulator sim;
  VectorStream stream;
  std::vector<CacheNode*> nodes;
  CacheNode* root = nullptr;
  OriginServer* origin = nullptr;
  Client* client = nullptr;
};

TEST(CacheNode, ColdMissClimbsToOriginAndCachesOnPath) {
  Hierarchy h(2, {5});
  h.run();
  EXPECT_EQ(h.origin->requests_served(), 1u);
  // Path: c->leaf0, leaf0->root, root->origin, origin->root, root->leaf0,
  // leaf0->c = 6 hops; both root and leaf0 cached the object.
  EXPECT_EQ(h.sim.metrics().summary().total_hops, 6u);
  EXPECT_TRUE(h.nodes[0]->cache().contains(5));
  EXPECT_TRUE(h.root->cache().contains(5));
  EXPECT_FALSE(h.nodes[1]->cache().contains(5));
}

TEST(CacheNode, LeafHitIsTwoHops) {
  Hierarchy h(1, {5, 5});
  h.run();
  const auto& summary = h.sim.metrics().summary();
  EXPECT_EQ(summary.hits, 1u);
  EXPECT_EQ(summary.total_hops, 6u + 2u);
}

TEST(CacheNode, RootHitServesSiblingLeaf) {
  // Leaf 0 warms the root (journey 1); journey 2 enters leaf 1 (round
  // robin), hits at the root, and leaf 1 caches the passing reply:
  // c->l1, l1->root (hit), root->l1, l1->c = 4 hops.
  Hierarchy h(2, {5, 5});
  h.run();
  const auto& summary = h.sim.metrics().summary();
  EXPECT_EQ(summary.hits, 1u);
  EXPECT_TRUE(h.nodes[1]->cache().contains(5));
  EXPECT_EQ(h.origin->requests_served(), 1u);
  EXPECT_EQ(summary.total_hops, 6u + 4u);
}

TEST(CacheNode, ConservationHolds) {
  std::vector<ObjectId> requests;
  for (int i = 0; i < 200; ++i) requests.push_back(1 + i % 17);
  Hierarchy h(3, requests);
  h.run();
  EXPECT_TRUE(h.client->drained());
  const auto& summary = h.sim.metrics().summary();
  EXPECT_EQ(summary.completed, 200u);
  EXPECT_EQ(summary.hits + h.origin->requests_served(), 200u);
}

TEST(CacheNode, PendingDrains) {
  std::vector<ObjectId> requests;
  for (int i = 0; i < 100; ++i) requests.push_back(1 + i % 9);
  Hierarchy h(2, requests);
  h.run();
  for (const CacheNode* node : h.nodes) EXPECT_EQ(node->pending(), 0u);
  EXPECT_EQ(h.root->pending(), 0u);
}

TEST(CacheNode, AdmitAllEvictsUnderPressure) {
  // Capacity 2: streaming distinct objects must keep evicting.
  std::vector<ObjectId> requests;
  for (int i = 0; i < 10; ++i) requests.push_back(100 + i);
  Hierarchy h(1, requests, /*capacity=*/2);
  h.run();
  EXPECT_EQ(h.nodes[0]->cache().size(), 2u);
  EXPECT_TRUE(h.nodes[0]->cache().contains(109));
  EXPECT_TRUE(h.nodes[0]->cache().contains(108));
}

TEST(CacheNode, StatsCount) {
  Hierarchy h(1, {5, 5, 6});
  h.run();
  EXPECT_EQ(h.nodes[0]->stats().requests_received, 3u);
  EXPECT_EQ(h.nodes[0]->stats().local_hits, 1u);
  EXPECT_EQ(h.nodes[0]->stats().forwards_upstream, 2u);
}

}  // namespace
}  // namespace adc::proxy
