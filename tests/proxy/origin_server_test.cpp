#include "proxy/origin_server.h"

#include <gtest/gtest.h>

#include <memory>

#include "sim/simulator.h"

namespace adc::proxy {
namespace {

class Catcher final : public sim::Node {
 public:
  Catcher(NodeId id, std::string name) : Node(id, sim::NodeKind::kProxy, std::move(name)) {}
  void on_message(sim::Transport&, const sim::Message& msg) override { replies.push_back(msg); }
  std::vector<sim::Message> replies;
};

TEST(OriginServer, RepliesToSenderWithNullResolver) {
  sim::Simulator sim;
  auto catcher_node = std::make_unique<Catcher>(0, "catcher");
  auto* catcher = catcher_node.get();
  sim.add_node(std::move(catcher_node));
  auto origin_node = std::make_unique<OriginServer>(1, "origin");
  auto* origin = origin_node.get();
  sim.add_node(std::move(origin_node));

  sim::Message request;
  request.kind = sim::MessageKind::kRequest;
  request.request_id = make_request_id(0, 1);
  request.object = 42;
  request.sender = 0;
  request.target = 1;
  request.client = 0;
  // Pretend some proxy marked it as resolved; the origin must not echo a
  // stale resolver claim back.
  request.resolver = kInvalidNode;
  sim.send(request);
  sim.run();

  ASSERT_EQ(catcher->replies.size(), 1u);
  const sim::Message& reply = catcher->replies[0];
  EXPECT_EQ(reply.kind, sim::MessageKind::kReply);
  EXPECT_EQ(reply.object, 42u);
  EXPECT_EQ(reply.request_id, request.request_id);
  EXPECT_EQ(reply.resolver, kInvalidNode);
  EXPECT_FALSE(reply.cached);
  EXPECT_FALSE(reply.proxy_hit);
  EXPECT_EQ(origin->requests_served(), 1u);
}

TEST(OriginServer, CountsEveryRequest) {
  sim::Simulator sim;
  auto catcher_node = std::make_unique<Catcher>(0, "catcher");
  sim.add_node(std::move(catcher_node));
  auto origin_node = std::make_unique<OriginServer>(1, "origin");
  auto* origin = origin_node.get();
  sim.add_node(std::move(origin_node));

  for (int i = 0; i < 5; ++i) {
    sim::Message request;
    request.kind = sim::MessageKind::kRequest;
    request.request_id = make_request_id(0, static_cast<std::uint64_t>(i));
    request.sender = 0;
    request.target = 1;
    request.client = 0;
    sim.send(request);
  }
  sim.run();
  EXPECT_EQ(origin->requests_served(), 5u);
}

}  // namespace
}  // namespace adc::proxy
