#include "proxy/client.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/simulator.h"

namespace adc::proxy {
namespace {

/// Minimal responder standing in for a proxy: replies to every request.
class Responder final : public sim::Node {
 public:
  Responder(NodeId id, std::string name) : Node(id, sim::NodeKind::kProxy, std::move(name)) {}

  void on_message(sim::Transport& net, const sim::Message& msg) override {
    ++requests;
    sim::Message reply = msg;
    reply.kind = sim::MessageKind::kReply;
    reply.sender = id();
    reply.target = msg.sender;
    reply.proxy_hit = true;
    net.send(std::move(reply));
  }

  int requests = 0;
};

struct Deployment {
  explicit Deployment(std::vector<ObjectId> requests, EntryPolicy policy,
                      int responders = 2, int concurrency = 1)
      : stream(std::move(requests)) {
    std::vector<NodeId> ids;
    for (int i = 0; i < responders; ++i) {
      ids.push_back(i);
      auto node = std::make_unique<Responder>(i, "responder[" + std::to_string(i) + "]");
      nodes.push_back(node.get());
      sim.add_node(std::move(node));
    }
    auto client_node = std::make_unique<Client>(responders, "client", stream, ids, policy,
                                                concurrency);
    client = client_node.get();
    sim.add_node(std::move(client_node));
  }

  void run() {
    client->start(sim);
    sim.run();
  }

  sim::Simulator sim;
  VectorStream stream;
  std::vector<Responder*> nodes;
  Client* client = nullptr;
};

TEST(Client, CompletesEveryRequest) {
  Deployment d({1, 2, 3, 4, 5}, EntryPolicy::kRoundRobin);
  d.run();
  EXPECT_TRUE(d.client->drained());
  EXPECT_EQ(d.client->issued(), 5u);
  EXPECT_EQ(d.client->completed(), 5u);
  EXPECT_EQ(d.sim.metrics().summary().completed, 5u);
}

TEST(Client, RoundRobinAlternatesEntries) {
  Deployment d({1, 2, 3, 4, 5, 6}, EntryPolicy::kRoundRobin);
  d.run();
  EXPECT_EQ(d.nodes[0]->requests, 3);
  EXPECT_EQ(d.nodes[1]->requests, 3);
}

TEST(Client, RandomEntriesHitAllProxiesEventually) {
  std::vector<ObjectId> requests(200, 1);
  Deployment d(requests, EntryPolicy::kRandom, /*responders=*/3);
  d.run();
  for (const Responder* node : d.nodes) EXPECT_GT(node->requests, 30) << node->name();
}

TEST(Client, EmptyStreamDrainsImmediately) {
  Deployment d({}, EntryPolicy::kRoundRobin);
  d.run();
  EXPECT_TRUE(d.client->drained());
  EXPECT_EQ(d.client->issued(), 0u);
}

TEST(Client, ConcurrencyKeepsMultipleInFlight) {
  std::vector<ObjectId> requests(20, 1);
  Deployment d(requests, EntryPolicy::kRoundRobin, 2, /*concurrency=*/4);
  d.run();
  EXPECT_TRUE(d.client->drained());
  EXPECT_EQ(d.client->completed(), 20u);
}

TEST(Client, RequestIdsAreUniqueAndTaggedWithIssuer) {
  const RequestId id = make_request_id(7, 123);
  EXPECT_EQ(request_id_issuer(id), 7);
  EXPECT_EQ(request_id_counter(id), 123u);
  EXPECT_NE(make_request_id(7, 1), make_request_id(7, 2));
  EXPECT_NE(make_request_id(1, 5), make_request_id(2, 5));
}

TEST(Client, MetricsReceiveLatency) {
  Deployment d({1, 2}, EntryPolicy::kRoundRobin);
  d.run();
  // Each journey: client->responder (1) + responder->client (1) = 2 ticks.
  EXPECT_EQ(d.sim.metrics().summary().total_latency, 4);
  EXPECT_EQ(d.sim.metrics().summary().total_hops, 4u);
}

TEST(Client, MilestoneFiresAtExactCompletionCount) {
  std::vector<ObjectId> requests(10, 1);
  Deployment d(requests, EntryPolicy::kRoundRobin);
  std::vector<std::uint64_t> fired_at;
  d.client->at_completed(3, [&] { fired_at.push_back(d.client->completed()); });
  d.client->at_completed(7, [&] { fired_at.push_back(d.client->completed()); });
  d.run();
  ASSERT_EQ(fired_at.size(), 2u);
  EXPECT_EQ(fired_at[0], 3u);
  EXPECT_EQ(fired_at[1], 7u);
}

TEST(Client, MultipleCallbacksPerMilestoneCompose) {
  std::vector<ObjectId> requests(5, 1);
  Deployment d(requests, EntryPolicy::kRoundRobin);
  int calls = 0;
  d.client->at_completed(2, [&] { ++calls; });
  d.client->at_completed(2, [&] { ++calls; });
  d.run();
  EXPECT_EQ(calls, 2);
}

TEST(Client, UnreachedMilestoneNeverFires) {
  std::vector<ObjectId> requests(4, 1);
  Deployment d(requests, EntryPolicy::kRoundRobin);
  bool fired = false;
  d.client->at_completed(100, [&] { fired = true; });
  d.run();
  EXPECT_FALSE(fired);
}

TEST(VectorStream, DeliversInOrderThenEnds) {
  VectorStream stream({5, 6, 7});
  EXPECT_EQ(stream.next(), 5u);
  EXPECT_EQ(stream.next(), 6u);
  EXPECT_EQ(stream.next(), 7u);
  EXPECT_FALSE(stream.next().has_value());
  EXPECT_FALSE(stream.next().has_value());
}

}  // namespace
}  // namespace adc::proxy
