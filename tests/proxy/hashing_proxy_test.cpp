#include "proxy/hashing_proxy.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "proxy/client.h"
#include "proxy/origin_server.h"
#include "sim/simulator.h"

namespace adc::proxy {
namespace {

/// Owner map with a fixed assignment, for deterministic tests.
class FixedOwnerMap final : public OwnerMap {
 public:
  explicit FixedOwnerMap(NodeId owner) : owner_(owner) {}
  NodeId owner(ObjectId) const override { return owner_; }

 private:
  NodeId owner_;
};

struct Deployment {
  Deployment(int n, NodeId fixed_owner, std::vector<ObjectId> requests,
             bool entry_caching = false, std::size_t capacity = 8)
      : sim(1), stream(std::move(requests)) {
    std::vector<NodeId> ids;
    for (int i = 0; i < n; ++i) ids.push_back(i);
    const NodeId origin_id = n;
    const NodeId client_id = n + 1;
    auto owners = std::make_shared<FixedOwnerMap>(fixed_owner);
    for (int i = 0; i < n; ++i) {
      auto node = std::make_unique<HashingProxy>(i, "proxy[" + std::to_string(i) + "]",
                                                 owners, origin_id, capacity,
                                                 cache::Policy::kLru, entry_caching);
      proxies.push_back(node.get());
      sim.add_node(std::move(node));
    }
    auto origin_node = std::make_unique<OriginServer>(origin_id, "origin");
    origin = origin_node.get();
    sim.add_node(std::move(origin_node));
    auto client_node = std::make_unique<Client>(client_id, "client", stream, ids,
                                                EntryPolicy::kRoundRobin);
    client = client_node.get();
    sim.add_node(std::move(client_node));
  }

  void run() {
    client->start(sim);
    sim.run();
  }

  sim::Simulator sim;
  VectorStream stream;
  std::vector<HashingProxy*> proxies;
  OriginServer* origin = nullptr;
  Client* client = nullptr;
};

TEST(HashingProxy, ColdMissGoesEntryOwnerOriginAndBack) {
  // 2 proxies, owner is proxy 1, entry (round robin) is proxy 0.
  Deployment d(2, /*fixed_owner=*/1, {5});
  d.run();
  EXPECT_TRUE(d.client->drained());
  EXPECT_EQ(d.origin->requests_served(), 1u);
  // Path: c->p0 (1), p0->p1 (2), p1->origin (3), origin->p1 (4),
  // p1->c directly, bypassing p0 (5).
  EXPECT_EQ(d.sim.metrics().summary().total_hops, 5u);
  // The owner cached it; the entry proxy did not (bypass).
  EXPECT_TRUE(d.proxies[1]->cache().contains(5));
  EXPECT_FALSE(d.proxies[0]->cache().contains(5));
}

TEST(HashingProxy, RepeatRequestHitsAtOwner) {
  Deployment d(2, 1, {5, 5});
  d.run();
  const auto& summary = d.sim.metrics().summary();
  EXPECT_EQ(summary.completed, 2u);
  EXPECT_EQ(summary.hits, 1u);
  EXPECT_EQ(d.origin->requests_served(), 1u);
  // Second journey: c->p1 (entry is p1 by round robin) -> hit -> c: 2 hops.
  EXPECT_EQ(summary.total_hops, 5u + 2u);
}

TEST(HashingProxy, OwnerHitFromOtherEntryBypassesEntry) {
  // Entry rotation: first request warms the owner (p1) via entry p0; the
  // third request enters p0 again and must be served by p1 directly to
  // the client in 3 hops (c->p0, p0->p1, p1->c).
  Deployment d(2, 1, {5, 9999, 5});
  d.run();
  const auto& summary = d.sim.metrics().summary();
  EXPECT_EQ(summary.hits, 1u);
  // Journey 1: 5 hops.  Journey 2 (entry p1 == owner, miss): c->p1,
  // p1->origin, origin->p1, p1->c = 4.  Journey 3: 3 hops.
  EXPECT_EQ(summary.total_hops, 5u + 4u + 3u);
}

TEST(HashingProxy, EntryCachingRoutesReplyThroughEntry) {
  Deployment d(2, 1, {5, 9999, 5}, /*entry_caching=*/true);
  d.run();
  // Journey 1 now routes origin->p1->p0->c, so the entry caches too.
  EXPECT_TRUE(d.proxies[0]->cache().contains(5));
  EXPECT_TRUE(d.proxies[1]->cache().contains(5));
  // Journey 3 enters p0 and hits locally: 2 hops.
  const auto& summary = d.sim.metrics().summary();
  EXPECT_EQ(summary.hits, 1u);
  // Journey 1: c->p0, p0->p1, p1->o, o->p1, p1->p0, p0->c = 6.
  // Journey 2 (entry p1 == owner): 4.  Journey 3: 2.
  EXPECT_EQ(summary.total_hops, 6u + 4u + 2u);
}

TEST(HashingProxy, LruEvictionAtOwner) {
  // Capacity 2 at every proxy, all objects owned by proxy 0.
  Deployment d(1, 0, {1, 2, 3, 1}, /*entry_caching=*/false, /*capacity=*/2);
  d.run();
  // After 1,2,3: cache = {2,3} (1 evicted).  Request 4 for object 1 is a
  // miss again.
  EXPECT_EQ(d.sim.metrics().summary().hits, 0u);
  EXPECT_EQ(d.origin->requests_served(), 4u);
  EXPECT_TRUE(d.proxies[0]->cache().contains(1));
  EXPECT_TRUE(d.proxies[0]->cache().contains(3));
  EXPECT_FALSE(d.proxies[0]->cache().contains(2));
}

TEST(HashingProxy, PendingDrains) {
  std::vector<ObjectId> requests;
  for (int i = 0; i < 100; ++i) requests.push_back(1 + i % 7);
  Deployment d(3, 2, requests);
  d.run();
  for (const HashingProxy* proxy : d.proxies) EXPECT_EQ(proxy->pending(), 0u);
}

TEST(HashingProxy, StatsAreConsistent) {
  std::vector<ObjectId> requests;
  for (int i = 0; i < 50; ++i) requests.push_back(1 + i % 5);
  Deployment d(2, 1, requests);
  d.run();
  const auto& owner_stats = d.proxies[1]->stats();
  EXPECT_EQ(owner_stats.forwards_to_origin, d.origin->requests_served());
  const auto& summary = d.sim.metrics().summary();
  EXPECT_EQ(summary.hits + d.origin->requests_served(), summary.completed);
}

TEST(HashingProxy, RealCarpOwnerMapSpreadsLoad) {
  // Smoke-test with the real CARP array: everything still conserves.
  std::vector<hash::CarpArray::Member> members;
  for (int i = 0; i < 3; ++i) {
    members.push_back({"proxy[" + std::to_string(i) + "]", i, 1.0});
  }
  auto owners = std::make_shared<CarpOwnerMap>(hash::CarpArray(std::move(members)));

  sim::Simulator sim(1);
  std::vector<ObjectId> requests;
  for (int i = 0; i < 300; ++i) requests.push_back(1 + i % 40);
  VectorStream stream(requests);
  std::vector<NodeId> ids = {0, 1, 2};
  std::vector<HashingProxy*> proxies;
  for (int i = 0; i < 3; ++i) {
    auto node = std::make_unique<HashingProxy>(i, "proxy[" + std::to_string(i) + "]", owners,
                                               3, 64);
    proxies.push_back(node.get());
    sim.add_node(std::move(node));
  }
  auto origin_node = std::make_unique<OriginServer>(3, "origin");
  auto* origin = origin_node.get();
  sim.add_node(std::move(origin_node));
  auto client_node = std::make_unique<Client>(4, "client", stream, ids);
  auto* client = client_node.get();
  sim.add_node(std::move(client_node));
  client->start(sim);
  sim.run();

  EXPECT_TRUE(client->drained());
  const auto& summary = sim.metrics().summary();
  EXPECT_EQ(summary.completed, 300u);
  EXPECT_EQ(summary.hits + origin->requests_served(), 300u);
  // 40 distinct objects fetched exactly once each (caches are large).
  EXPECT_EQ(origin->requests_served(), 40u);
  // Every proxy owns a nonempty share.
  for (const HashingProxy* proxy : proxies) {
    EXPECT_GT(proxy->cache().size(), 0u) << proxy->name();
  }
}

}  // namespace
}  // namespace adc::proxy
