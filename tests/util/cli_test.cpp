#include "util/cli.h"

#include <gtest/gtest.h>

#include <vector>

namespace adc::util {
namespace {

bool run(CliParser& cli, std::vector<const char*> argv, std::string* error = nullptr) {
  argv.insert(argv.begin(), "prog");
  return cli.parse(static_cast<int>(argv.size()), argv.data(), error);
}

TEST(Cli, DefaultsApplyWithoutFlags) {
  CliParser cli("test");
  cli.option("n", "5", "a number");
  ASSERT_TRUE(run(cli, {}));
  EXPECT_EQ(cli.config().get_int("n", 0), 5);
}

TEST(Cli, SpaceSeparatedValue) {
  CliParser cli("test");
  cli.option("n", "5", "a number");
  ASSERT_TRUE(run(cli, {"--n", "9"}));
  EXPECT_EQ(cli.config().get_int("n", 0), 9);
}

TEST(Cli, EqualsValue) {
  CliParser cli("test");
  cli.option("n", "5", "a number");
  ASSERT_TRUE(run(cli, {"--n=12"}));
  EXPECT_EQ(cli.config().get_int("n", 0), 12);
}

TEST(Cli, BooleanFlag) {
  CliParser cli("test");
  cli.option("verbose", "", "talk more", /*is_flag=*/true);
  ASSERT_TRUE(run(cli, {"--verbose"}));
  EXPECT_TRUE(cli.config().get_bool("verbose", false));
}

TEST(Cli, FlagWithExplicitValue) {
  CliParser cli("test");
  cli.option("verbose", "", "talk more", /*is_flag=*/true);
  ASSERT_TRUE(run(cli, {"--verbose=false"}));
  EXPECT_FALSE(cli.config().get_bool("verbose", true));
}

TEST(Cli, UnknownOptionFails) {
  CliParser cli("test");
  std::string error;
  EXPECT_FALSE(run(cli, {"--nope"}, &error));
  EXPECT_NE(error.find("--nope"), std::string::npos);
}

TEST(Cli, MissingValueFails) {
  CliParser cli("test");
  cli.option("n", "5", "a number");
  std::string error;
  EXPECT_FALSE(run(cli, {"--n"}, &error));
  EXPECT_NE(error.find("expects a value"), std::string::npos);
}

TEST(Cli, PositionalArguments) {
  CliParser cli("test");
  cli.option("n", "5", "a number");
  ASSERT_TRUE(run(cli, {"file1", "--n", "2", "file2"}));
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "file1");
  EXPECT_EQ(cli.positional()[1], "file2");
}

TEST(Cli, HelpRequested) {
  CliParser cli("test");
  cli.option("n", "5", "a number");
  ASSERT_TRUE(run(cli, {"--help"}));
  EXPECT_TRUE(cli.help_requested());
}

TEST(Cli, HelpTextMentionsOptionsAndDefaults) {
  CliParser cli("my program");
  cli.option("count", "3", "how many");
  const std::string help = cli.help_text();
  EXPECT_NE(help.find("my program"), std::string::npos);
  EXPECT_NE(help.find("--count"), std::string::npos);
  EXPECT_NE(help.find("default: 3"), std::string::npos);
  EXPECT_NE(help.find("how many"), std::string::npos);
}

TEST(Cli, LastFlagWins) {
  CliParser cli("test");
  cli.option("n", "5", "a number");
  ASSERT_TRUE(run(cli, {"--n", "1", "--n", "2"}));
  EXPECT_EQ(cli.config().get_int("n", 0), 2);
}

TEST(Cli, MultiOptionAccumulatesInArgvOrder) {
  CliParser cli("test");
  cli.multi_option("peer", "cluster member id=host:port");
  ASSERT_TRUE(run(cli, {"--peer", "0=127.0.0.1:7000", "--peer=1=127.0.0.1:7001", "--peer",
                        "2=127.0.0.1:7002"}));
  ASSERT_EQ(cli.values("peer").size(), 3u);
  EXPECT_EQ(cli.values("peer")[0], "0=127.0.0.1:7000");
  EXPECT_EQ(cli.values("peer")[1], "1=127.0.0.1:7001");
  EXPECT_EQ(cli.values("peer")[2], "2=127.0.0.1:7002");
}

TEST(Cli, MultiOptionNeverGivenIsEmpty) {
  CliParser cli("test");
  cli.multi_option("peer", "cluster member");
  ASSERT_TRUE(run(cli, {}));
  EXPECT_TRUE(cli.values("peer").empty());
  EXPECT_TRUE(cli.values("unregistered").empty());
}

TEST(Cli, MultiOptionMissingValueFails) {
  CliParser cli("test");
  cli.multi_option("peer", "cluster member");
  std::string error;
  EXPECT_FALSE(run(cli, {"--peer"}, &error));
  EXPECT_NE(error.find("--peer"), std::string::npos);
  EXPECT_NE(error.find("expects a value"), std::string::npos);
}

TEST(Cli, MultiOptionDoesNotLeakIntoConfig) {
  CliParser cli("test");
  cli.multi_option("peer", "cluster member");
  ASSERT_TRUE(run(cli, {"--peer", "0=h:1"}));
  EXPECT_FALSE(cli.config().contains("peer"));
}

TEST(Cli, MultiOptionMixesWithScalarOptions) {
  CliParser cli("test");
  cli.option("n", "5", "a number");
  cli.multi_option("peer", "cluster member");
  ASSERT_TRUE(run(cli, {"--peer", "a", "--n", "7", "--peer", "b"}));
  EXPECT_EQ(cli.config().get_int("n", 0), 7);
  ASSERT_EQ(cli.values("peer").size(), 2u);
  EXPECT_EQ(cli.values("peer")[0], "a");
  EXPECT_EQ(cli.values("peer")[1], "b");
}

TEST(Cli, HelpTextMarksRepeatableOptions) {
  CliParser cli("test");
  cli.multi_option("peer", "cluster member");
  EXPECT_NE(cli.help_text().find("(repeatable)"), std::string::npos);
}

TEST(Cli, GivenDistinguishesExplicitFlagsFromDefaults) {
  CliParser cli("test");
  cli.option("n", "5", "a number").option("m", "7", "another number");
  ASSERT_TRUE(run(cli, {"--n", "5"}));
  // --n was typed (even with its default value); --m rests on its default.
  EXPECT_TRUE(cli.given("n"));
  EXPECT_FALSE(cli.given("m"));
  EXPECT_FALSE(cli.given("nonexistent"));
}

TEST(Cli, GivenCoversEveryFlagForm) {
  CliParser cli("test");
  cli.option("n", "5", "a number")
      .option("verbose", "", "talk more", /*is_flag=*/true)
      .multi_option("peer", "cluster member");
  ASSERT_TRUE(run(cli, {"--n=9", "--verbose", "--peer", "0=h:1", "--peer", "1=h:2"}));
  EXPECT_TRUE(cli.given("n"));
  EXPECT_TRUE(cli.given("verbose"));
  EXPECT_TRUE(cli.given("peer"));  // recorded once despite repetition
}

}  // namespace
}  // namespace adc::util
