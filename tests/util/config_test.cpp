#include "util/config.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace adc::util {
namespace {

TEST(Config, ParsesKeyValueLines) {
  Config config;
  ASSERT_TRUE(config.parse("a = 1\nb=two\n c = 3.5 \n"));
  EXPECT_EQ(config.get_int("a", 0), 1);
  EXPECT_EQ(config.get_string("b", ""), "two");
  EXPECT_DOUBLE_EQ(config.get_double("c", 0.0), 3.5);
}

TEST(Config, IgnoresCommentsAndBlankLines) {
  Config config;
  ASSERT_TRUE(config.parse("# comment\n\na = 1 # trailing\n; another\nb = 2;inline\n"));
  EXPECT_EQ(config.get_int("a", 0), 1);
  EXPECT_EQ(config.get_int("b", 0), 2);
}

TEST(Config, RejectsMalformedLines) {
  Config config;
  std::string error;
  EXPECT_FALSE(config.parse("novalue\n", &error));
  EXPECT_NE(error.find("line 1"), std::string::npos);
}

TEST(Config, RejectsEmptyKey) {
  Config config;
  std::string error;
  EXPECT_FALSE(config.parse(" = 5\n", &error));
  EXPECT_NE(error.find("empty key"), std::string::npos);
}

TEST(Config, LaterSetOverrides) {
  Config config;
  config.set("x", "1");
  config.set("x", "2");
  EXPECT_EQ(config.get_int("x", 0), 2);
}

TEST(Config, FallbacksWhenMissing) {
  Config config;
  EXPECT_EQ(config.get_int("missing", 7), 7);
  EXPECT_EQ(config.get_string("missing", "d"), "d");
  EXPECT_EQ(config.get_bool("missing", true), true);
  EXPECT_EQ(config.get_size("missing", 9), 9u);
}

TEST(Config, BadValuesFallBackAndAreReported) {
  Config config;
  config.set("n", "not-a-number");
  EXPECT_EQ(config.get_int("n", 3), 3);
  ASSERT_EQ(config.bad_values().size(), 1u);
  EXPECT_EQ(config.bad_values()[0], "n");
}

TEST(Config, GetSizeSupportsSuffixes) {
  Config config;
  config.set("table", "20k");
  EXPECT_EQ(config.get_size("table", 0), 20000u);
}

TEST(Config, UnusedKeysTracked) {
  Config config;
  config.set("used", "1");
  config.set("unused", "2");
  (void)config.get_int("used", 0);
  const auto unused = config.unused_keys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "unused");
}

TEST(Config, DumpPreservesInsertionOrder) {
  Config config;
  config.set("z", "1");
  config.set("a", "2");
  EXPECT_EQ(config.dump(), "z = 1\na = 2\n");
}

TEST(Config, ContainsDoesNotMarkUsed) {
  Config config;
  config.set("k", "v");
  EXPECT_TRUE(config.contains("k"));
  EXPECT_EQ(config.unused_keys().size(), 1u);
}

TEST(Config, LoadFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/adc_config_test.cfg";
  {
    std::ofstream out(path);
    out << "alpha = 0.8\nproxies = 5\n";
  }
  Config config;
  std::string error;
  ASSERT_TRUE(config.load_file(path, &error)) << error;
  EXPECT_DOUBLE_EQ(config.get_double("alpha", 0), 0.8);
  EXPECT_EQ(config.get_int("proxies", 0), 5);
  std::remove(path.c_str());
}

TEST(Config, LoadFileMissing) {
  Config config;
  std::string error;
  EXPECT_FALSE(config.load_file("/nonexistent/path/adc.cfg", &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace adc::util
