#include "util/string_util.h"

#include <gtest/gtest.h>

namespace adc::util {
namespace {

TEST(Trim, Basics) {
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("  abc"), "abc");
  EXPECT_EQ(trim("abc  "), "abc");
  EXPECT_EQ(trim("\t abc \n"), "abc");
  EXPECT_EQ(trim(" a b "), "a b");
}

TEST(Split, PreservesEmptyFields) {
  const auto fields = split("a,,b", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[2], "b");
}

TEST(Split, SingleField) {
  const auto fields = split("abc", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "abc");
}

TEST(Split, TrailingDelimiter) {
  const auto fields = split("a,b,", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[2], "");
}

TEST(Split, EmptyInput) {
  const auto fields = split("", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "");
}

TEST(SplitWhitespace, CollapsesRuns) {
  const auto fields = split_whitespace("  a \t b\n\nc  ");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
  EXPECT_EQ(fields[2], "c");
}

TEST(SplitWhitespace, EmptyAndBlank) {
  EXPECT_TRUE(split_whitespace("").empty());
  EXPECT_TRUE(split_whitespace("   \t\n").empty());
}

TEST(ToLower, Ascii) {
  EXPECT_EQ(to_lower("AbC-123"), "abc-123");
  EXPECT_EQ(to_lower(""), "");
}

TEST(StartsEndsWith, Basics) {
  EXPECT_TRUE(starts_with("http://x", "http://"));
  EXPECT_FALSE(starts_with("htt", "http://"));
  EXPECT_TRUE(ends_with("file.html", ".html"));
  EXPECT_FALSE(ends_with("html", ".html"));
  EXPECT_TRUE(starts_with("abc", ""));
  EXPECT_TRUE(ends_with("abc", ""));
}

TEST(ParseInt, Valid) {
  EXPECT_EQ(parse_int("0"), 0);
  EXPECT_EQ(parse_int("-17"), -17);
  EXPECT_EQ(parse_int(" 42 "), 42);
  EXPECT_EQ(parse_int("9223372036854775807"), 9223372036854775807LL);
}

TEST(ParseInt, Invalid) {
  EXPECT_FALSE(parse_int("").has_value());
  EXPECT_FALSE(parse_int("abc").has_value());
  EXPECT_FALSE(parse_int("12x").has_value());
  EXPECT_FALSE(parse_int("1 2").has_value());
  EXPECT_FALSE(parse_int("9223372036854775808").has_value());  // overflow
}

TEST(ParseUint, RejectsNegative) {
  EXPECT_EQ(parse_uint("7"), 7u);
  EXPECT_FALSE(parse_uint("-7").has_value());
  EXPECT_FALSE(parse_uint("").has_value());
}

TEST(ParseDouble, Valid) {
  EXPECT_DOUBLE_EQ(*parse_double("0.5"), 0.5);
  EXPECT_DOUBLE_EQ(*parse_double("-2e3"), -2000.0);
  EXPECT_DOUBLE_EQ(*parse_double(" 1 "), 1.0);
}

TEST(ParseDouble, Invalid) {
  EXPECT_FALSE(parse_double("").has_value());
  EXPECT_FALSE(parse_double("x").has_value());
  EXPECT_FALSE(parse_double("1.2.3").has_value());
}

TEST(ParseBool, Variants) {
  for (const char* t : {"1", "true", "TRUE", "yes", "on", "On"}) {
    EXPECT_EQ(parse_bool(t), true) << t;
  }
  for (const char* f : {"0", "false", "no", "off", "OFF"}) {
    EXPECT_EQ(parse_bool(f), false) << f;
  }
  EXPECT_FALSE(parse_bool("maybe").has_value());
  EXPECT_FALSE(parse_bool("").has_value());
}

TEST(ParseSize, Suffixes) {
  EXPECT_EQ(parse_size("20k"), 20000u);
  EXPECT_EQ(parse_size("20K"), 20000u);
  EXPECT_EQ(parse_size("3m"), 3000000u);
  EXPECT_EQ(parse_size("2G"), 2000000000u);
  EXPECT_EQ(parse_size("123"), 123u);
  EXPECT_EQ(parse_size(" 5k "), 5000u);
}

TEST(ParseSize, Invalid) {
  EXPECT_FALSE(parse_size("").has_value());
  EXPECT_FALSE(parse_size("k").has_value());
  EXPECT_FALSE(parse_size("1.5k").has_value());
  EXPECT_FALSE(parse_size("-1k").has_value());
}

TEST(WithThousands, Grouping) {
  EXPECT_EQ(with_thousands(0), "0");
  EXPECT_EQ(with_thousands(999), "999");
  EXPECT_EQ(with_thousands(1000), "1,000");
  EXPECT_EQ(with_thousands(1234567), "1,234,567");
  EXPECT_EQ(with_thousands(3990000), "3,990,000");
}

TEST(Join, Basics) {
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"a"}, ", "), "a");
  EXPECT_EQ(join({"a", "b", "c"}, "-"), "a-b-c");
}

}  // namespace
}  // namespace adc::util
