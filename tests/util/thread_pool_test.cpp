#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace adc::util {
namespace {

TEST(ThreadPool, WorkerCountClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 1u);
}

TEST(ThreadPool, WorkerCountMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.worker_count(), 3u);
}

TEST(ThreadPool, HardwareWorkersIsPositive) {
  EXPECT_GE(ThreadPool::hardware_workers(), 1u);
}

TEST(ThreadPool, ZeroTasksDestructsCleanly) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.pending(), 0u);
  // Destructor must join idle workers without a task ever being submitted.
}

TEST(ThreadPool, FuturesComeBackInSubmissionOrder) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([i]() { return i * i; }));
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, SingleWorkerRunsEverythingSequentially) {
  ThreadPool pool(1);
  std::atomic<int> concurrent{0};
  std::atomic<int> max_concurrent{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.submit([&]() {
      const int now = ++concurrent;
      int seen = max_concurrent.load();
      while (now > seen && !max_concurrent.compare_exchange_weak(seen, now)) {
      }
      --concurrent;
    }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(max_concurrent.load(), 1);
}

TEST(ThreadPool, RunsTasksConcurrently) {
  // Two tasks that each wait for the other to start can only finish if
  // they run on distinct workers at the same time.
  ThreadPool pool(2);
  std::mutex mutex;
  std::condition_variable cv;
  int started = 0;
  const auto task = [&]() {
    std::unique_lock<std::mutex> lock(mutex);
    ++started;
    cv.notify_all();
    return cv.wait_for(lock, std::chrono::seconds(30), [&]() { return started == 2; });
  };
  auto a = pool.submit(task);
  auto b = pool.submit(task);
  EXPECT_TRUE(a.get());
  EXPECT_TRUE(b.get());
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto failing = pool.submit([]() -> int { throw std::runtime_error("task failed"); });
  auto fine = pool.submit([]() { return 7; });
  EXPECT_THROW(
      {
        try {
          failing.get();
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "task failed");
          throw;
        }
      },
      std::runtime_error);
  // A throwing task must not take the worker (or the pool) down with it.
  EXPECT_EQ(fine.get(), 7);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> executed{0};
  {
    ThreadPool pool(1);
    // The first task occupies the single worker long enough for the rest
    // to still be queued when the destructor runs.
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 8; ++i) {
      futures.push_back(pool.submit([&executed]() {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++executed;
      }));
    }
    // Futures intentionally not waited on: destruction must drain.
  }
  EXPECT_EQ(executed.load(), 8);
}

}  // namespace
}  // namespace adc::util
