#include "util/logging.h"

#include <gtest/gtest.h>

namespace adc::util {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_level(LogLevel::kWarn); }
};

TEST_F(LoggingTest, LevelNamesRoundTrip) {
  for (const LogLevel level : {LogLevel::kTrace, LogLevel::kDebug, LogLevel::kInfo,
                               LogLevel::kWarn, LogLevel::kError, LogLevel::kOff}) {
    EXPECT_EQ(parse_log_level(log_level_name(level)), level);
  }
}

TEST_F(LoggingTest, ParseIsCaseInsensitive) {
  EXPECT_EQ(parse_log_level("DEBUG"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("Warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("none"), LogLevel::kOff);
}

TEST_F(LoggingTest, UnknownNameDefaultsToInfo) {
  EXPECT_EQ(parse_log_level("banana"), LogLevel::kInfo);
}

TEST_F(LoggingTest, GateRespectsLevel) {
  set_log_level(LogLevel::kWarn);
  EXPECT_FALSE(log_enabled(LogLevel::kDebug));
  EXPECT_FALSE(log_enabled(LogLevel::kInfo));
  EXPECT_TRUE(log_enabled(LogLevel::kWarn));
  EXPECT_TRUE(log_enabled(LogLevel::kError));
}

TEST_F(LoggingTest, OffDisablesEverything) {
  set_log_level(LogLevel::kOff);
  EXPECT_FALSE(log_enabled(LogLevel::kError));
}

TEST_F(LoggingTest, MacroDoesNotEvaluateWhenDisabled) {
  set_log_level(LogLevel::kError);
  int evaluations = 0;
  ADC_LOG_DEBUG << "side effect " << ++evaluations;
  EXPECT_EQ(evaluations, 0);
  ADC_LOG_ERROR << "side effect " << ++evaluations;
  EXPECT_EQ(evaluations, 1);
}

}  // namespace
}  // namespace adc::util
