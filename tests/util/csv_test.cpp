#include "util/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace adc::util {
namespace {

TEST(Csv, PlainRow) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.field("a").field(std::int64_t{1}).field(2.5, 2);
  csv.end_row();
  EXPECT_EQ(out.str(), "a,1,2.50\n");
}

TEST(Csv, Header) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"x", "y"});
  EXPECT_EQ(out.str(), "x,y\n");
  EXPECT_EQ(csv.rows_written(), 1u);
}

TEST(Csv, EscapesCommas) {
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
}

TEST(Csv, EscapesQuotes) {
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, EscapesNewlines) {
  EXPECT_EQ(CsvWriter::escape("a\nb"), "\"a\nb\"");
}

TEST(Csv, NoEscapeWhenClean) {
  EXPECT_EQ(CsvWriter::escape("plain-text_123"), "plain-text_123");
}

TEST(Csv, MultipleRows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.field("r1").end_row();
  csv.field("r2").end_row();
  EXPECT_EQ(out.str(), "r1\nr2\n");
  EXPECT_EQ(csv.rows_written(), 2u);
}

TEST(Csv, UnsignedAndNegative) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.field(std::uint64_t{18446744073709551615ULL}).field(std::int64_t{-5});
  csv.end_row();
  EXPECT_EQ(out.str(), "18446744073709551615,-5\n");
}

TEST(Csv, DoublePrecisionControl) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.field(1.0 / 3.0, 4);
  csv.end_row();
  EXPECT_EQ(out.str(), "0.3333\n");
}

}  // namespace
}  // namespace adc::util
