#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <vector>

namespace adc::util {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() != b.next()) ++differing;
  }
  EXPECT_GT(differing, 90);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng rng(77);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(rng.next());
  rng.reseed(77);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(rng.next(), first[static_cast<std::size_t>(i)]);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(5);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(9);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[rng.below(kBuckets)];
  for (int count : counts) {
    EXPECT_NEAR(count, kSamples / kBuckets, kSamples / kBuckets * 0.1);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(4);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, RangeSingleton) {
  Rng rng(4);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.range(42, 42), 42);
}

TEST(Rng, UniformInHalfOpenUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_FALSE(rng.chance(-1.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_TRUE(rng.chance(2.0));
  }
}

TEST(Rng, ChanceFrequency) {
  Rng rng(17);
  int successes = 0;
  for (int i = 0; i < 100000; ++i) {
    if (rng.chance(0.3)) ++successes;
  }
  EXPECT_NEAR(successes / 100000.0, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(19);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.exponential(5.0);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 100000.0, 5.0, 0.15);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  rng.shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
}

TEST(Rng, ShuffleActuallyMoves) {
  Rng rng(23);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  rng.shuffle(v);
  int moved = 0;
  for (int i = 0; i < 100; ++i) {
    if (v[static_cast<std::size_t>(i)] != i) ++moved;
  }
  EXPECT_GT(moved, 50);
}

TEST(Splitmix64, KnownSequenceIsStable) {
  std::uint64_t state = 0;
  const std::uint64_t first = splitmix64(state);
  const std::uint64_t second = splitmix64(state);
  EXPECT_NE(first, second);
  // Regression pin: the seeding procedure must never silently change, or
  // every recorded experiment output becomes unreproducible.
  std::uint64_t replay_state = 0;
  EXPECT_EQ(splitmix64(replay_state), first);
  EXPECT_EQ(splitmix64(replay_state), second);
}

class ZipfSamplerTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfSamplerTest, PmfSumsToOne) {
  const ZipfSampler zipf(500, GetParam());
  double total = 0.0;
  for (std::size_t r = 1; r <= 500; ++r) total += zipf.pmf(r);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_P(ZipfSamplerTest, PmfIsMonotoneDecreasing) {
  const ZipfSampler zipf(500, GetParam());
  for (std::size_t r = 2; r <= 500; ++r) {
    EXPECT_LE(zipf.pmf(r), zipf.pmf(r - 1) + 1e-12) << "rank " << r;
  }
}

TEST_P(ZipfSamplerTest, SamplesMatchPmf) {
  const ZipfSampler zipf(50, GetParam());
  Rng rng(31);
  std::map<std::size_t, int> counts;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) ++counts[zipf.sample(rng)];
  for (std::size_t r = 1; r <= 5; ++r) {
    const double expected = zipf.pmf(r) * kSamples;
    EXPECT_NEAR(counts[r], expected, expected * 0.05 + 50) << "rank " << r;
  }
}

TEST_P(ZipfSamplerTest, SamplesInRange) {
  const ZipfSampler zipf(10, GetParam());
  Rng rng(37);
  for (int i = 0; i < 10000; ++i) {
    const std::size_t r = zipf.sample(rng);
    ASSERT_GE(r, 1u);
    ASSERT_LE(r, 10u);
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, ZipfSamplerTest,
                         ::testing::Values(0.0, 0.5, 0.8, 1.0, 1.1, 1.5));

TEST(ZipfSampler, PmfOutOfRangeIsZero) {
  const ZipfSampler zipf(10, 1.0);
  EXPECT_EQ(zipf.pmf(0), 0.0);
  EXPECT_EQ(zipf.pmf(11), 0.0);
}

TEST(ZipfSampler, SingleElement) {
  const ZipfSampler zipf(1, 1.0);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.sample(rng), 1u);
  EXPECT_NEAR(zipf.pmf(1), 1.0, 1e-12);
}

TEST(ZipfSampler, AlphaZeroIsUniform) {
  const ZipfSampler zipf(4, 0.0);
  for (std::size_t r = 1; r <= 4; ++r) EXPECT_NEAR(zipf.pmf(r), 0.25, 1e-9);
}

}  // namespace
}  // namespace adc::util
