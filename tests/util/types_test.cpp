#include "util/types.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace adc {
namespace {

TEST(RequestId, PacksIssuerAndCounter) {
  const RequestId id = make_request_id(5, 1234567);
  EXPECT_EQ(request_id_issuer(id), 5);
  EXPECT_EQ(request_id_counter(id), 1234567u);
}

TEST(RequestId, ZeroValues) {
  const RequestId id = make_request_id(0, 0);
  EXPECT_EQ(request_id_issuer(id), 0);
  EXPECT_EQ(request_id_counter(id), 0u);
}

TEST(RequestId, LargeCounterStaysIn48Bits) {
  const std::uint64_t big = (1ULL << 48) - 1;
  const RequestId id = make_request_id(3, big);
  EXPECT_EQ(request_id_issuer(id), 3);
  EXPECT_EQ(request_id_counter(id), big);
}

TEST(RequestId, CounterOverflowWrapsWithoutTouchingIssuer) {
  const RequestId id = make_request_id(3, 1ULL << 48);  // one past the field
  EXPECT_EQ(request_id_issuer(id), 3);
  EXPECT_EQ(request_id_counter(id), 0u);
}

TEST(RequestId, DistinctAcrossIssuersAndCounters) {
  std::unordered_set<RequestId> seen;
  for (NodeId issuer = 0; issuer < 8; ++issuer) {
    for (std::uint64_t counter = 0; counter < 64; ++counter) {
      EXPECT_TRUE(seen.insert(make_request_id(issuer, counter)).second);
    }
  }
  EXPECT_EQ(seen.size(), 8u * 64u);
}

TEST(RequestId, IsConstexpr) {
  static_assert(request_id_issuer(make_request_id(7, 9)) == 7);
  static_assert(request_id_counter(make_request_id(7, 9)) == 9);
  SUCCEED();
}

TEST(Types, Sentinels) {
  EXPECT_LT(kInvalidNode, 0);
  EXPECT_NE(kInvalidNode, kLocationUnset);
  EXPECT_GT(kSimTimeMax, 0);
}

}  // namespace
}  // namespace adc
