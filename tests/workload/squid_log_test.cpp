#include "workload/squid_log.h"

#include <gtest/gtest.h>

#include <sstream>

namespace adc::workload {
namespace {

constexpr char kSampleLog[] =
    "1046700001.123 250 10.0.0.1 TCP_MISS/200 4312 GET http://a.test/page1 - "
    "DIRECT/a.test text/html\n"
    "1046700002.456 18 10.0.0.2 TCP_HIT/200 4312 GET http://a.test/page1 - "
    "NONE/- text/html\n"
    "1046700003.789 510 10.0.0.1 TCP_MISS/200 988 POST http://a.test/form - "
    "DIRECT/a.test text/html\n"
    "garbage line\n"
    "1046700004.000 40 10.0.0.3 TCP_MISS/200 777 GET http://b.test/page2 - "
    "DIRECT/b.test image/png\n";

TEST(SquidParse, GoodLine) {
  const auto entry = parse_squid_line(
      "1046700001.123 250 10.0.0.1 TCP_MISS/200 4312 GET http://a.test/page1 - "
      "DIRECT/a.test text/html");
  ASSERT_TRUE(entry.has_value());
  EXPECT_DOUBLE_EQ(entry->timestamp, 1046700001.123);
  EXPECT_EQ(entry->elapsed_ms, 250);
  EXPECT_EQ(entry->client, "10.0.0.1");
  EXPECT_EQ(entry->result_code, "TCP_MISS/200");
  EXPECT_EQ(entry->bytes, 4312);
  EXPECT_EQ(entry->method, "GET");
  EXPECT_EQ(entry->url, "http://a.test/page1");
}

TEST(SquidParse, ToleratesMissingTrailingFields) {
  const auto entry =
      parse_squid_line("1046700001.0 10 10.0.0.1 TCP_MISS/200 100 GET http://a.test/x");
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->url, "http://a.test/x");
}

TEST(SquidParse, RejectsShortLines) {
  EXPECT_FALSE(parse_squid_line("").has_value());
  EXPECT_FALSE(parse_squid_line("only three fields").has_value());
}

TEST(SquidParse, RejectsNonNumericFields) {
  EXPECT_FALSE(parse_squid_line("notatime 10 c TCP_MISS/200 100 GET http://x").has_value());
  EXPECT_FALSE(parse_squid_line("1.0 ms c TCP_MISS/200 100 GET http://x").has_value());
  EXPECT_FALSE(parse_squid_line("1.0 10 c TCP_MISS/200 big GET http://x").has_value());
}

TEST(SquidParse, RejectsDashUrl) {
  EXPECT_FALSE(parse_squid_line("1.0 10 c TCP_MISS/200 100 GET - -").has_value());
}

TEST(SquidLoad, GetsOnlyFilter) {
  std::istringstream in(kSampleLog);
  UrlInterner interner;
  const auto result = load_squid_log(in, interner);
  EXPECT_EQ(result.parsed, 3u);   // two page1 GETs + one page2 GET
  EXPECT_EQ(result.skipped, 2u);  // the POST and the garbage line
  EXPECT_EQ(result.trace.size(), 3u);
  EXPECT_EQ(interner.size(), 2u);  // two distinct URLs
  // The repeated URL got the same id.
  EXPECT_EQ(result.trace[0], result.trace[1]);
  EXPECT_NE(result.trace[0], result.trace[2]);
}

TEST(SquidLoad, AllMethodsWhenFilterOff) {
  std::istringstream in(kSampleLog);
  UrlInterner interner;
  SquidLoadOptions options;
  options.gets_only = false;
  const auto result = load_squid_log(in, interner, options);
  EXPECT_EQ(result.parsed, 4u);
  EXPECT_EQ(result.skipped, 1u);  // only the garbage line
}

TEST(SquidLoad, LimitStopsEarly) {
  std::istringstream in(kSampleLog);
  UrlInterner interner;
  SquidLoadOptions options;
  options.limit = 2;
  const auto result = load_squid_log(in, interner, options);
  EXPECT_EQ(result.parsed, 2u);
  EXPECT_EQ(result.trace.size(), 2u);
}

TEST(SquidLoad, PhasesSpanWholeTrace) {
  std::istringstream in(kSampleLog);
  UrlInterner interner;
  const auto result = load_squid_log(in, interner);
  EXPECT_EQ(result.trace.phases().fill_end, 0u);
  EXPECT_EQ(result.trace.phases().phase2_end, result.trace.size());
}

TEST(SquidLoad, MissingFileIsNullopt) {
  UrlInterner interner;
  EXPECT_FALSE(load_squid_log_file("/nonexistent/access.log", interner).has_value());
}

TEST(SquidLoad, EmptyStream) {
  std::istringstream in("");
  UrlInterner interner;
  const auto result = load_squid_log(in, interner);
  EXPECT_EQ(result.parsed, 0u);
  EXPECT_TRUE(result.trace.empty());
}

}  // namespace
}  // namespace adc::workload
