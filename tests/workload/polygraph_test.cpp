#include "workload/polygraph.h"

#include <gtest/gtest.h>

#include <map>
#include <unordered_set>

namespace adc::workload {
namespace {

PolygraphConfig small_config() {
  PolygraphConfig config;
  config.fill_requests = 5000;
  config.phase2_requests = 8000;
  config.phase3_requests = 7000;
  config.hot_set_size = 400;
  config.seed = 7;
  return config;
}

TEST(Polygraph, TotalLengthAndPhaseBoundaries) {
  const auto config = small_config();
  const Trace trace = generate_polygraph_trace(config);
  EXPECT_EQ(trace.size(), 5000u + 8000u + 7000u);
  EXPECT_EQ(trace.phases().fill_end, 5000u);
  EXPECT_EQ(trace.phases().phase2_end, 13000u);
}

TEST(Polygraph, FillPhaseIsMostlyUnique) {
  const auto config = small_config();
  const Trace trace = generate_polygraph_trace(config);
  const Trace fill = trace.slice(0, trace.phases().fill_end);
  const auto stats = fill.stats();
  // fill_recurrence defaults to 2%.
  EXPECT_LT(stats.recurrence_rate, 0.05);
  EXPECT_GT(stats.unique_objects, 4700u);
}

TEST(Polygraph, PhaseThreeReplaysPhaseTwoExactly) {
  const auto config = small_config();
  const Trace trace = generate_polygraph_trace(config);
  const auto& phases = trace.phases();
  for (std::uint64_t i = 0; i < trace.size() - phases.phase2_end; ++i) {
    ASSERT_EQ(trace[phases.phase2_end + i], trace[phases.fill_end + i]) << "offset " << i;
  }
}

TEST(Polygraph, Phase3LongerThanPhase2IsClamped) {
  PolygraphConfig config = small_config();
  config.phase3_requests = 100000;  // longer than phase 2
  const Trace trace = generate_polygraph_trace(config);
  EXPECT_EQ(trace.size() - trace.phases().phase2_end, config.phase2_requests);
}

TEST(Polygraph, SameSeedSameTrace) {
  const Trace a = generate_polygraph_trace(small_config());
  const Trace b = generate_polygraph_trace(small_config());
  ASSERT_EQ(a.size(), b.size());
  for (std::uint64_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
}

TEST(Polygraph, DifferentSeedsDiffer) {
  PolygraphConfig other = small_config();
  other.seed = 8;
  const Trace a = generate_polygraph_trace(small_config());
  const Trace b = generate_polygraph_trace(other);
  ASSERT_EQ(a.size(), b.size());
  std::uint64_t diffs = 0;
  for (std::uint64_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) ++diffs;
  }
  EXPECT_GT(diffs, a.size() / 10);
}

TEST(Polygraph, ObjectIdsAreDenseFromOne) {
  const Trace trace = generate_polygraph_trace(small_config());
  ObjectId max_id = 0;
  std::unordered_set<ObjectId> seen;
  for (ObjectId id : trace.requests()) {
    ASSERT_GE(id, 1u);
    seen.insert(id);
    max_id = std::max(max_id, id);
  }
  // Dense: every id up to the max was requested at least once.
  EXPECT_EQ(seen.size(), max_id);
}

TEST(Polygraph, HotSetDrivesRecurrence) {
  const auto config = small_config();
  const Trace trace = generate_polygraph_trace(config);
  // Count phase-2 requests landing on the most popular object: with Zipf
  // concentration it must recur far above the uniform rate.
  const Trace phase2 = trace.slice(trace.phases().fill_end, trace.phases().phase2_end);
  std::map<ObjectId, int> counts;
  for (ObjectId id : phase2.requests()) ++counts[id];
  int top = 0;
  for (const auto& [id, count] : counts) top = std::max(top, count);
  EXPECT_GT(top, static_cast<int>(phase2.size() / config.hot_set_size) * 5);
}

TEST(Polygraph, ScaledConfigScalesEverything) {
  const auto scaled = PolygraphConfig::scaled(0.1);
  const auto full = PolygraphConfig::paper_scale();
  EXPECT_EQ(scaled.fill_requests, full.fill_requests / 10);
  EXPECT_EQ(scaled.phase2_requests, full.phase2_requests / 10);
  EXPECT_EQ(scaled.phase3_requests, full.phase3_requests / 10);
  EXPECT_EQ(scaled.hot_set_size, full.hot_set_size / 10);
  EXPECT_EQ(scaled.zipf_alpha, full.zipf_alpha);
}

TEST(Polygraph, ScaledNeverProducesZeroCounts) {
  const auto tiny = PolygraphConfig::scaled(1e-9);
  EXPECT_GE(tiny.fill_requests, 1u);
  EXPECT_GE(tiny.hot_set_size, 1u);
  const Trace trace = generate_polygraph_trace(tiny);
  EXPECT_GE(trace.size(), 3u);
}

TEST(Polygraph, PaperScaleMatchesReportedNumbers) {
  const auto config = PolygraphConfig::paper_scale();
  // "a set of almost 4 million requests ... Phase 1 with around 1.0
  // million ... Phase 2 with around 1.5 million".
  EXPECT_EQ(config.fill_requests, 1'000'000u);
  EXPECT_EQ(config.phase2_requests, 1'500'000u);
  const std::uint64_t total =
      config.fill_requests + config.phase2_requests + config.phase3_requests;
  EXPECT_NEAR(static_cast<double>(total), 3.99e6, 1e4);
}

TEST(Polygraph, OverallRecurrenceInPlausibleBand) {
  const Trace trace = generate_polygraph_trace(PolygraphConfig::scaled(0.02));
  const auto stats = trace.stats();
  // Fill (25%) is almost all new; phases 2+3 recur heavily: overall
  // recurrence must land well inside (0.4, 0.9).
  EXPECT_GT(stats.recurrence_rate, 0.4);
  EXPECT_LT(stats.recurrence_rate, 0.9);
}

}  // namespace
}  // namespace adc::workload
