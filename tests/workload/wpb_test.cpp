#include "workload/wpb.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace adc::workload {
namespace {

WpbConfig small_config() {
  WpbConfig config;
  config.requests = 20000;
  config.recency_probability = 0.5;
  config.stack_depth = 200;
  config.seed = 13;
  return config;
}

TEST(Wpb, LengthAndPhases) {
  const Trace trace = generate_wpb_trace(small_config());
  EXPECT_EQ(trace.size(), 20000u);
  EXPECT_EQ(trace.phases().fill_end, 0u);
  EXPECT_EQ(trace.phases().phase2_end, 20000u);
}

TEST(Wpb, RecurrenceTracksRecencyProbability) {
  const Trace trace = generate_wpb_trace(small_config());
  const auto stats = trace.stats();
  // Every re-reference is a recurrence; a handful of "new" draws also
  // collide is impossible (fresh ids are unique), so recurrence should be
  // close to the configured 0.5.
  EXPECT_NEAR(stats.recurrence_rate, 0.5, 0.03);
}

TEST(Wpb, ZeroRecencyIsAllUnique) {
  WpbConfig config = small_config();
  config.recency_probability = 0.0;
  const Trace trace = generate_wpb_trace(config);
  const auto stats = trace.stats();
  EXPECT_EQ(stats.unique_objects, trace.size());
  EXPECT_EQ(stats.recurrence_rate, 0.0);
}

TEST(Wpb, FullRecencyReusesOneObject) {
  WpbConfig config = small_config();
  config.recency_probability = 1.0;
  const Trace trace = generate_wpb_trace(config);
  // The stack starts empty, so request 1 introduces object 1; all later
  // requests re-reference it.
  EXPECT_EQ(trace.stats().unique_objects, 1u);
}

TEST(Wpb, DeterministicBySeed) {
  const Trace a = generate_wpb_trace(small_config());
  const Trace b = generate_wpb_trace(small_config());
  ASSERT_EQ(a.size(), b.size());
  for (std::uint64_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
  WpbConfig other = small_config();
  other.seed = 14;
  const Trace c = generate_wpb_trace(other);
  std::uint64_t diffs = 0;
  for (std::uint64_t i = 0; i < a.size(); ++i) {
    if (a[i] != c[i]) ++diffs;
  }
  EXPECT_GT(diffs, a.size() / 10);
}

TEST(Wpb, TemporalLocalityIsShortRange) {
  // The defining property vs Zipf: re-references cluster near their
  // previous occurrence.  Measure the median reuse distance — it must be
  // well below the stack depth.
  WpbConfig config = small_config();
  config.stack_theta = 1.2;
  const Trace trace = generate_wpb_trace(config);
  std::unordered_map<ObjectId, std::uint64_t> last_seen;
  std::vector<std::uint64_t> distances;
  for (std::uint64_t i = 0; i < trace.size(); ++i) {
    const auto it = last_seen.find(trace[i]);
    if (it != last_seen.end()) distances.push_back(i - it->second);
    last_seen[trace[i]] = i;
  }
  ASSERT_GT(distances.size(), 1000u);
  std::nth_element(distances.begin(), distances.begin() + distances.size() / 2,
                   distances.end());
  EXPECT_LT(distances[distances.size() / 2], config.stack_depth / 2);
}

TEST(Wpb, StackDepthBoundsReuseDistanceInObjectCount) {
  // An object deeper than the stack can never be re-referenced, so the
  // set of objects "live" at any point is bounded by the stack depth plus
  // the new-object stream.
  WpbConfig config = small_config();
  config.requests = 5000;
  config.stack_depth = 50;
  const Trace trace = generate_wpb_trace(config);
  // Unique objects: roughly the new-object draws (~50%) — far more than
  // the stack depth, confirming old objects die off.
  EXPECT_GT(trace.stats().unique_objects, 2000u);
}

TEST(Wpb, DepthOneAlwaysRepeatsTheLastObject) {
  WpbConfig config = small_config();
  config.requests = 2000;
  config.stack_depth = 1;
  const Trace trace = generate_wpb_trace(config);
  for (std::uint64_t i = 1; i < trace.size(); ++i) {
    if (trace[i] == trace[i - 1]) continue;      // re-reference of depth 1
    EXPECT_GT(trace[i], trace[i - 1]);           // otherwise a fresh object
  }
}

}  // namespace
}  // namespace adc::workload
