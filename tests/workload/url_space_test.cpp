#include "workload/url_space.h"

#include <gtest/gtest.h>

namespace adc::workload {
namespace {

TEST(UrlSpace, UrlIsDeterministicAndUnique) {
  const UrlSpace space(16);
  EXPECT_EQ(space.url_for(1), space.url_for(1));
  EXPECT_NE(space.url_for(1), space.url_for(2));
  EXPECT_NE(space.url_for(17), space.url_for(1));  // same server, different object
}

TEST(UrlSpace, UrlShapeIsPolygraphLike) {
  const UrlSpace space(16);
  const std::string url = space.url_for(33);
  EXPECT_EQ(url, "http://w1.polymix.test/wss/obj33.html");
  EXPECT_EQ(space.server_of(33), 1u);
}

TEST(UrlSpace, ObjectsSpreadOverServers) {
  const UrlSpace space(4);
  EXPECT_EQ(space.server_of(0), 0u);
  EXPECT_EQ(space.server_of(5), 1u);
  EXPECT_EQ(space.server_of(7), 3u);
}

TEST(UrlInterner, AssignsDenseIdsFromOne) {
  UrlInterner interner;
  EXPECT_EQ(interner.intern("http://a.test/1"), 1u);
  EXPECT_EQ(interner.intern("http://a.test/2"), 2u);
  EXPECT_EQ(interner.intern("http://a.test/3"), 3u);
  EXPECT_EQ(interner.size(), 3u);
}

TEST(UrlInterner, DeduplicatesRepeats) {
  UrlInterner interner;
  const ObjectId first = interner.intern("http://a.test/x");
  EXPECT_EQ(interner.intern("http://a.test/x"), first);
  EXPECT_EQ(interner.size(), 1u);
}

TEST(UrlInterner, FindWithoutInserting) {
  UrlInterner interner;
  EXPECT_EQ(interner.find("http://a.test/x"), 0u);
  interner.intern("http://a.test/x");
  EXPECT_EQ(interner.find("http://a.test/x"), 1u);
  EXPECT_EQ(interner.find("http://a.test/y"), 0u);
  EXPECT_EQ(interner.size(), 1u);
}

TEST(UrlInterner, UrlOfRoundTrips) {
  UrlInterner interner;
  const ObjectId id = interner.intern("http://w3.polymix.test/wss/obj7.html");
  EXPECT_EQ(interner.url_of(id), "http://w3.polymix.test/wss/obj7.html");
  EXPECT_EQ(interner.url_of(0), "");
  EXPECT_EQ(interner.url_of(999), "");
}

TEST(UrlInterner, ManyUrlsNoSpuriousCollisions) {
  UrlInterner interner;
  const UrlSpace space(64);
  for (ObjectId i = 1; i <= 20000; ++i) {
    ASSERT_EQ(interner.intern(space.url_for(i)), i);
  }
  EXPECT_EQ(interner.size(), 20000u);
  EXPECT_EQ(interner.collisions(), 0u);
  // Re-interning returns the original ids.
  EXPECT_EQ(interner.intern(space.url_for(12345)), 12345u);
}

}  // namespace
}  // namespace adc::workload
