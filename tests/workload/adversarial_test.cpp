#include "workload/adversarial.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "hash/carp.h"
#include "hash/consistent_hash.h"
#include "hash/rendezvous.h"

namespace adc::workload {
namespace {

// --- hash flood -----------------------------------------------------------

TEST(HashFlood, MinedKeysAllOwnedByVictimUnderEveryScheme) {
  for (const FloodScheme scheme :
       {FloodScheme::kCarp, FloodScheme::kRing, FloodScheme::kRendezvous}) {
    for (int victim = 0; victim < 5; ++victim) {
      HashFloodConfig config;
      config.scheme = scheme;
      config.proxies = 5;
      config.victim = victim;
      config.flood_keys = 64;
      const std::vector<ObjectId> keys = mine_colliding_keys(config);
      ASSERT_EQ(keys.size(), 64u) << flood_scheme_name(scheme);
      for (const ObjectId key : keys) {
        EXPECT_EQ(flood_owner_of(scheme, config.proxies, key), victim)
            << flood_scheme_name(scheme) << " key " << key;
      }
    }
  }
}

// The oracle must agree with src/hash directly: same member names
// ("proxy[i]"), same node ids, same owner — otherwise mined placements
// would not transfer to driver::run_experiment or the adcd daemon.
TEST(HashFlood, OracleMatchesRealCarpArray) {
  std::vector<hash::CarpArray::Member> members;
  for (int i = 0; i < 5; ++i) {
    members.push_back({"proxy[" + std::to_string(i) + "]", static_cast<NodeId>(i), 1.0});
  }
  const hash::CarpArray carp(std::move(members));

  HashFloodConfig config;
  config.scheme = FloodScheme::kCarp;
  config.flood_keys = 128;
  config.victim = 2;
  for (const ObjectId key : mine_colliding_keys(config)) {
    EXPECT_EQ(carp.owner(key), static_cast<NodeId>(2));
  }
}

TEST(HashFlood, OracleMatchesRealRingAndRendezvous) {
  hash::ConsistentHashRing ring;
  hash::RendezvousHash hrw;
  for (int i = 0; i < 5; ++i) {
    const std::string name = "proxy[" + std::to_string(i) + "]";
    ring.add_member(static_cast<NodeId>(i), name);
    hrw.add_member(static_cast<NodeId>(i), name);
  }
  for (ObjectId object = kFloodKeyBase; object < kFloodKeyBase + 500; ++object) {
    EXPECT_EQ(flood_owner_of(FloodScheme::kRing, 5, object), static_cast<int>(ring.owner(object)));
    EXPECT_EQ(flood_owner_of(FloodScheme::kRendezvous, 5, object),
              static_cast<int>(hrw.owner(object)));
  }
}

TEST(HashFlood, MiningIsDeterministicAndSeedIndependent) {
  HashFloodConfig a;
  HashFloodConfig b;
  b.seed = a.seed + 99;  // mining must not depend on the trace seed
  a.flood_keys = b.flood_keys = 32;
  EXPECT_EQ(mine_colliding_keys(a), mine_colliding_keys(b));
}

TEST(HashFlood, TraceMixesFloodAndBenignAtConfiguredFraction) {
  HashFloodConfig config;
  config.requests = 50'000;
  config.flood_fraction = 0.8;
  config.flood_keys = 16;
  const std::unordered_set<ObjectId> flood_set = [&] {
    const auto keys = mine_colliding_keys(config);
    return std::unordered_set<ObjectId>(keys.begin(), keys.end());
  }();

  const Trace trace = generate_hash_flood_trace(config);
  ASSERT_EQ(trace.size(), 50'000u);
  std::uint64_t flood_requests = 0;
  for (std::uint64_t i = 0; i < trace.size(); ++i) {
    const bool is_flood = trace[i] >= kFloodKeyBase;
    if (is_flood) {
      ++flood_requests;
      EXPECT_TRUE(flood_set.count(trace[i])) << "unmined flood id " << trace[i];
    }
  }
  const double fraction =
      static_cast<double>(flood_requests) / static_cast<double>(trace.size());
  EXPECT_NEAR(fraction, 0.8, 0.02);
}

TEST(HashFlood, TraceIsDeterministic) {
  const HashFloodConfig config;
  const Trace a = generate_hash_flood_trace(config);
  const Trace b = generate_hash_flood_trace(config);
  ASSERT_EQ(a.size(), b.size());
  for (std::uint64_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
}

// --- flash crowd ----------------------------------------------------------

TEST(FlashCrowd, ColdBeforeRampPeakShareAfter) {
  FlashCrowdConfig config;
  config.requests = 100'000;
  config.ramp_begin = 0.4;
  config.ramp_window = 0.1;
  config.peak_fraction = 0.3;
  const Trace trace = generate_flash_crowd_trace(config);
  ASSERT_EQ(trace.size(), 100'000u);

  const auto crowd_count = [&](std::uint64_t begin, std::uint64_t end) {
    std::uint64_t crowd = 0;
    for (std::uint64_t i = begin; i < end; ++i) {
      if (trace[i] >= kCrowdObjectBase) ++crowd;
    }
    return crowd;
  };
  // Stone cold before the ramp begins.
  EXPECT_EQ(crowd_count(0, 40'000), 0u);
  // Sustained at ~peak_fraction after the ramp completes.
  const double post_share = static_cast<double>(crowd_count(50'000, 100'000)) / 50'000.0;
  EXPECT_NEAR(post_share, 0.3, 0.02);
  // The ramp itself averages about half the peak.
  const double ramp_share = static_cast<double>(crowd_count(40'000, 50'000)) / 10'000.0;
  EXPECT_NEAR(ramp_share, 0.15, 0.03);
}

TEST(FlashCrowd, CrowdObjectsComeFromTheReservedRange) {
  FlashCrowdConfig config;
  config.requests = 20'000;
  config.crowd_objects = 4;
  const Trace trace = generate_flash_crowd_trace(config);
  for (std::uint64_t i = 0; i < trace.size(); ++i) {
    if (trace[i] >= kCrowdObjectBase) {
      EXPECT_LT(trace[i], kCrowdObjectBase + 4);
    }
  }
}

TEST(FlashCrowd, TraceIsDeterministic) {
  const FlashCrowdConfig config;
  const Trace a = generate_flash_crowd_trace(config);
  const Trace b = generate_flash_crowd_trace(config);
  ASSERT_EQ(a.size(), b.size());
  for (std::uint64_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
}

// --- diurnal swing --------------------------------------------------------

TEST(Diurnal, TrafficRotatesBetweenPopulations) {
  DiurnalConfig config;
  config.requests = 100'000;
  config.populations = 2;
  config.cycles = 1.0;  // population 0 peaks at both ends, population 1 mid-trace
  config.floor_weight = 0.05;
  const Trace trace = generate_diurnal_trace(config);
  ASSERT_EQ(trace.size(), 100'000u);

  // Early window: population 0 dominates; mid-trace the roles flip.
  const auto early = diurnal_population_counts(config, trace, 0, 10'000);
  const auto mid = diurnal_population_counts(config, trace, 45'000, 55'000);
  ASSERT_EQ(early.size(), 3u);
  EXPECT_EQ(early.back(), 0u) << "ids outside every population band";
  EXPECT_GT(early[0], 4 * early[1]);
  EXPECT_GT(mid[1], 4 * mid[0]);
}

TEST(Diurnal, FloorKeepsOffPeakPopulationsWarm) {
  DiurnalConfig config;
  config.requests = 50'000;
  config.populations = 2;
  config.cycles = 1.0;
  config.floor_weight = 0.2;
  const Trace trace = generate_diurnal_trace(config);
  const auto early = diurnal_population_counts(config, trace, 0, 10'000);
  EXPECT_GT(early[1], 0u);  // off-peak but never silent
}

TEST(Diurnal, TraceIsDeterministic) {
  const DiurnalConfig config;
  const Trace a = generate_diurnal_trace(config);
  const Trace b = generate_diurnal_trace(config);
  ASSERT_EQ(a.size(), b.size());
  for (std::uint64_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
}

// --- parsing --------------------------------------------------------------

TEST(FloodScheme, NamesRoundTrip) {
  for (const FloodScheme scheme :
       {FloodScheme::kCarp, FloodScheme::kRing, FloodScheme::kRendezvous}) {
    const auto parsed = parse_flood_scheme(flood_scheme_name(scheme));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, scheme);
  }
  EXPECT_EQ(parse_flood_scheme("hrw"), FloodScheme::kRendezvous);
  EXPECT_EQ(parse_flood_scheme("consistent"), FloodScheme::kRing);
  EXPECT_FALSE(parse_flood_scheme("md5").has_value());
}

}  // namespace
}  // namespace adc::workload
