#include "workload/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace adc::workload {
namespace {

Trace sample_trace() {
  return Trace({1, 2, 3, 2, 1, 4, 4, 4}, TracePhases{2, 5});
}

std::string temp_path(const char* name) { return ::testing::TempDir() + "/" + name; }

TEST(Trace, StatsCountUniqueAndRecurrence) {
  const auto stats = sample_trace().stats();
  EXPECT_EQ(stats.requests, 8u);
  EXPECT_EQ(stats.unique_objects, 4u);
  EXPECT_DOUBLE_EQ(stats.recurrence_rate, 0.5);
}

TEST(Trace, EmptyStats) {
  const auto stats = Trace().stats();
  EXPECT_EQ(stats.requests, 0u);
  EXPECT_EQ(stats.unique_objects, 0u);
  EXPECT_EQ(stats.recurrence_rate, 0.0);
}

TEST(Trace, SliceClipsPhases) {
  const Trace trace = sample_trace();
  const Trace middle = trace.slice(1, 6);
  EXPECT_EQ(middle.size(), 5u);
  EXPECT_EQ(middle[0], 2u);
  EXPECT_EQ(middle.phases().fill_end, 1u);   // was 2, shifted by 1
  EXPECT_EQ(middle.phases().phase2_end, 4u); // was 5, shifted by 1
}

TEST(Trace, SliceBeyondEndClamps) {
  const Trace trace = sample_trace();
  const Trace tail = trace.slice(6, 100);
  EXPECT_EQ(tail.size(), 2u);
  const Trace nothing = trace.slice(10, 20);
  EXPECT_EQ(nothing.size(), 0u);
}

TEST(Trace, TextRoundTrip) {
  const std::string path = temp_path("trace_roundtrip.txt");
  const Trace original = sample_trace();
  ASSERT_TRUE(original.save_text(path));
  Trace loaded;
  std::string error;
  ASSERT_TRUE(Trace::load_text(path, &loaded, &error)) << error;
  ASSERT_EQ(loaded.size(), original.size());
  for (std::uint64_t i = 0; i < original.size(); ++i) EXPECT_EQ(loaded[i], original[i]);
  EXPECT_EQ(loaded.phases().fill_end, 2u);
  EXPECT_EQ(loaded.phases().phase2_end, 5u);
  std::remove(path.c_str());
}

TEST(Trace, TextLoadRejectsGarbage) {
  const std::string path = temp_path("trace_garbage.txt");
  {
    std::ofstream out(path);
    out << "1\nnot-a-number\n3\n";
  }
  Trace loaded;
  std::string error;
  EXPECT_FALSE(Trace::load_text(path, &loaded, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Trace, TextLoadMissingFile) {
  Trace loaded;
  std::string error;
  EXPECT_FALSE(Trace::load_text("/nonexistent/adc.trace", &loaded, &error));
  EXPECT_FALSE(error.empty());
}

TEST(Trace, BinaryRoundTrip) {
  const std::string path = temp_path("trace_roundtrip.bin");
  const Trace original = sample_trace();
  ASSERT_TRUE(original.save_binary(path));
  Trace loaded;
  std::string error;
  ASSERT_TRUE(Trace::load_binary(path, &loaded, &error)) << error;
  ASSERT_EQ(loaded.size(), original.size());
  for (std::uint64_t i = 0; i < original.size(); ++i) EXPECT_EQ(loaded[i], original[i]);
  EXPECT_EQ(loaded.phases().fill_end, 2u);
  EXPECT_EQ(loaded.phases().phase2_end, 5u);
  std::remove(path.c_str());
}

TEST(Trace, BinaryDetectsBadMagic) {
  const std::string path = temp_path("trace_badmagic.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "WRONGMAGICxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx";
  }
  Trace loaded;
  std::string error;
  EXPECT_FALSE(Trace::load_binary(path, &loaded, &error));
  EXPECT_NE(error.find("magic"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Trace, BinaryDetectsTruncation) {
  const std::string path = temp_path("trace_truncated.bin");
  ASSERT_TRUE(sample_trace().save_binary(path));
  // Chop off the last 6 bytes (checksum + payload tail).
  std::string contents;
  {
    std::ifstream in(path, std::ios::binary);
    contents.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(contents.data(), static_cast<std::streamsize>(contents.size() - 6));
  }
  Trace loaded;
  std::string error;
  EXPECT_FALSE(Trace::load_binary(path, &loaded, &error));
  EXPECT_FALSE(error.empty());
  std::remove(path.c_str());
}

TEST(Trace, BinaryDetectsCorruption) {
  const std::string path = temp_path("trace_corrupt.bin");
  ASSERT_TRUE(sample_trace().save_binary(path));
  std::string contents;
  {
    std::ifstream in(path, std::ios::binary);
    contents.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }
  contents[contents.size() / 2] ^= 0x40;  // flip a payload bit
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  }
  Trace loaded;
  std::string error;
  EXPECT_FALSE(Trace::load_binary(path, &loaded, &error));
  EXPECT_NE(error.find("checksum"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Trace, BinaryEmptyTrace) {
  const std::string path = temp_path("trace_empty.bin");
  ASSERT_TRUE(Trace().save_binary(path));
  Trace loaded;
  std::string error;
  ASSERT_TRUE(Trace::load_binary(path, &loaded, &error)) << error;
  EXPECT_TRUE(loaded.empty());
  std::remove(path.c_str());
}

TEST(Trace, AppendGrows) {
  Trace trace;
  trace.append(5);
  trace.append(6);
  EXPECT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[1], 6u);
}

}  // namespace
}  // namespace adc::workload
